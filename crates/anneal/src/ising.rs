//! Ising spin models: `E(s) = Σ hᵢsᵢ + Σ Jᵢⱼsᵢsⱼ + offset`, `s ∈ {−1,+1}ⁿ`.
//!
//! The solver-facing representation: a flat CSR adjacency
//! ([`CsrAdjacency`]) makes single-spin-flip neighbor scans cache-linear,
//! and the [`crate::field::IsingFields`] cache built on top of it makes
//! the proposals every annealer sweep hammers O(1).

use crate::csr::CsrAdjacency;
use crate::qubo::Qubo;

/// An Ising model with sparse couplings.
#[derive(Clone, Debug)]
pub struct Ising {
    n: usize,
    h: Vec<f64>,
    couplings: Vec<(usize, usize, f64)>,
    /// Symmetric CSR adjacency over the couplings.
    adj: CsrAdjacency,
    offset: f64,
}

impl Ising {
    /// Builds a model from fields and couplings. Duplicate couplings are
    /// summed; self-couplings are rejected.
    pub fn new(h: Vec<f64>, couplings: Vec<(usize, usize, f64)>, offset: f64) -> Self {
        let n = h.len();
        let mut merged: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        for (a, b, j) in couplings {
            assert!(a < n && b < n, "coupling out of range");
            assert_ne!(a, b, "self-coupling");
            let key = if a < b { (a, b) } else { (b, a) };
            *merged.entry(key).or_insert(0.0) += j;
        }
        let couplings: Vec<(usize, usize, f64)> = merged
            .into_iter()
            .filter(|&(_, j)| j != 0.0)
            .map(|((a, b), j)| (a, b, j))
            .collect();
        let adj = CsrAdjacency::from_edges(n, &couplings);
        Ising {
            n,
            h,
            couplings,
            adj,
            offset,
        }
    }

    /// Number of spins.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Linear fields.
    pub fn fields(&self) -> &[f64] {
        &self.h
    }

    /// Couplings as `(i, j, J)` triples with `i < j`.
    pub fn couplings(&self) -> &[(usize, usize, f64)] {
        &self.couplings
    }

    /// Constant offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Neighbors of spin `i` as `(index, J)` pairs, in ascending index
    /// order (a view over the CSR row).
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adj.iter_row(i)
    }

    /// The flat CSR adjacency over all couplings.
    pub fn adjacency(&self) -> &CsrAdjacency {
        &self.adj
    }

    /// Energy of a spin configuration (`sᵢ ∈ {−1, +1}`).
    pub fn energy(&self, s: &[i8]) -> f64 {
        assert_eq!(s.len(), self.n, "spin count");
        debug_assert!(s.iter().all(|&v| v == 1 || v == -1));
        let mut e = self.offset;
        for (i, &hi) in self.h.iter().enumerate() {
            e += hi * s[i] as f64;
        }
        for &(a, b, j) in &self.couplings {
            e += j * (s[a] as f64) * (s[b] as f64);
        }
        e
    }

    /// Energy change from flipping spin `i`: `ΔE = −2sᵢ(hᵢ + Σⱼ Jᵢⱼsⱼ)`.
    /// O(degree) — the per-proposal rescan the field caches replace; kept
    /// as the reference implementation the property tests compare against.
    #[inline]
    pub fn delta_flip(&self, s: &[i8], i: usize) -> f64 {
        let mut local = self.h[i];
        let (targets, weights) = self.adj.row(i);
        for (&j, &jij) in targets.iter().zip(weights) {
            local += jij * s[j as usize] as f64;
        }
        -2.0 * s[i] as f64 * local
    }

    /// Converts to the equivalent QUBO (inverse of [`Qubo::to_ising`]).
    pub fn to_qubo(&self) -> Qubo {
        // s = 2x − 1.
        let mut q = Qubo::new(self.n);
        let mut offset = self.offset;
        for (i, &hi) in self.h.iter().enumerate() {
            q.add_linear(i, 2.0 * hi);
            offset -= hi;
        }
        for &(a, b, j) in &self.couplings {
            q.add(a, b, 4.0 * j);
            q.add_linear(a, -2.0 * j);
            q.add_linear(b, -2.0 * j);
            offset += j;
        }
        q.add_offset(offset);
        q
    }

    /// Exact ground state by enumeration; only for `n ≤ 24`.
    pub fn brute_force_ground(&self) -> (Vec<i8>, f64) {
        assert!(self.n <= 24, "brute force too large");
        let mut best_e = f64::INFINITY;
        let mut best = vec![1i8; self.n];
        for idx in 0..(1usize << self.n) {
            let s: Vec<i8> = (0..self.n)
                .map(|i| if idx & (1 << i) != 0 { 1 } else { -1 })
                .collect();
            let e = self.energy(&s);
            if e < best_e {
                best_e = e;
                best = s;
            }
        }
        (best, best_e)
    }

    /// Largest |coupling| + |field| — a scale for temperature schedules.
    pub fn energy_scale(&self) -> f64 {
        let hmax = self.h.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let jmax = self
            .couplings
            .iter()
            .fold(0.0f64, |m, &(_, _, j)| m.max(j.abs()));
        (hmax + jmax).max(1e-12)
    }
}

/// Converts spins to bits under `x = (1+s)/2`.
pub fn spins_to_bits(s: &[i8]) -> Vec<bool> {
    s.iter().map(|&v| v > 0).collect()
}

/// Converts bits to spins.
pub fn bits_to_spins(x: &[bool]) -> Vec<i8> {
    x.iter().map(|&b| if b { 1 } else { -1 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frustrated_triangle() -> Ising {
        // Antiferromagnetic triangle: ground energy = -J (one unsatisfied
        // edge), 6-fold degenerate.
        Ising::new(
            vec![0.0; 3],
            vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)],
            0.0,
        )
    }

    #[test]
    fn energy_hand_check() {
        let m = Ising::new(vec![0.5, -1.0], vec![(0, 1, 2.0)], 0.25);
        // s = (+1, +1): 0.5 - 1 + 2 + 0.25 = 1.75
        assert!((m.energy(&[1, 1]) - 1.75).abs() < 1e-12);
        // s = (+1, -1): 0.5 + 1 - 2 + 0.25 = -0.25
        assert!((m.energy(&[1, -1]) + 0.25).abs() < 1e-12);
    }

    #[test]
    fn delta_flip_matches_recomputation() {
        let m = frustrated_triangle();
        let mut s = vec![1i8, -1, 1];
        for i in 0..3 {
            let before = m.energy(&s);
            let d = m.delta_flip(&s, i);
            s[i] = -s[i];
            let after = m.energy(&s);
            s[i] = -s[i];
            assert!((after - before - d).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_couplings_are_merged() {
        let m = Ising::new(vec![0.0; 2], vec![(0, 1, 1.0), (1, 0, 0.5)], 0.0);
        assert_eq!(m.couplings().len(), 1);
        assert!((m.couplings()[0].2 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn qubo_roundtrip_preserves_energy() {
        let m = Ising::new(vec![0.3, -0.7, 1.1], vec![(0, 1, 0.9), (1, 2, -1.4)], 0.6);
        let q = m.to_qubo();
        let back = q.to_ising();
        for idx in 0..8usize {
            let s: Vec<i8> = (0..3)
                .map(|i| if idx & (1 << i) != 0 { 1 } else { -1 })
                .collect();
            let x = spins_to_bits(&s);
            assert!((m.energy(&s) - q.energy(&x)).abs() < 1e-12);
            assert!((m.energy(&s) - back.energy(&s)).abs() < 1e-12);
        }
    }

    #[test]
    fn brute_force_finds_frustrated_ground() {
        let m = frustrated_triangle();
        let (s, e) = m.brute_force_ground();
        assert!((e + 1.0).abs() < 1e-12, "ground energy {e}");
        assert!((m.energy(&s) - e).abs() < 1e-12);
    }

    #[test]
    fn ferromagnet_ground_is_aligned() {
        let m = Ising::new(
            vec![0.0; 4],
            vec![(0, 1, -1.0), (1, 2, -1.0), (2, 3, -1.0)],
            0.0,
        );
        let (s, e) = m.brute_force_ground();
        assert!((e + 3.0).abs() < 1e-12);
        assert!(s.iter().all(|&v| v == s[0]));
    }

    #[test]
    #[should_panic(expected = "self-coupling")]
    fn self_coupling_rejected() {
        Ising::new(vec![0.0; 2], vec![(1, 1, 1.0)], 0.0);
    }
}
