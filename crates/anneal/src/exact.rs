//! Exact QUBO/Ising solvers by exhaustive enumeration — ground truth for
//! solver-quality experiments on small instances.

use crate::budget::{Budget, BudgetMeter};
use crate::qubo::Qubo;

/// How many Gray-code steps run between deadline/cancel polls: the
/// enumeration's inner loop is O(n) per step, so polling every 4096
/// steps keeps the clock off the hot path while still bounding overrun.
const EXACT_POLL_STRIDE: usize = 4096;

/// Exact solution of a QUBO.
#[derive(Clone, Debug, PartialEq)]
pub struct ExactSolution {
    /// The optimal assignment.
    pub bits: Vec<bool>,
    /// The optimal energy.
    pub energy: f64,
    /// Number of optimal assignments (degeneracy).
    pub degeneracy: usize,
}

/// Enumerates all assignments of a QUBO (`n ≤ 26`), using Gray-code
/// incremental updates so each step is `O(n)` instead of `O(n²)`.
pub fn solve_exact(qubo: &Qubo) -> ExactSolution {
    solve_exact_with_budget(qubo, &Budget::unlimited()).0
}

/// [`solve_exact`] under a [`Budget`]. One Gray-code step is one
/// proposal, so a proposal bound stops the walk after exactly that many
/// steps — deterministic regardless of thread count (the walk is
/// serial). Deadline/cancel are polled every [`EXACT_POLL_STRIDE`]
/// steps. Returns the best-of-enumerated solution plus `true` when a
/// bound cut the walk short — a cut walk's `energy`/`bits` are still
/// exact for the prefix visited, but `degeneracy` only counts visited
/// optima and the result may not be the global optimum.
pub fn solve_exact_with_budget(qubo: &Qubo, budget: &Budget) -> (ExactSolution, bool) {
    let n = qubo.n();
    assert!(n <= 26, "exhaustive enumeration over {n} variables refused");
    assert!(n >= 1, "empty model");
    let mut meter = BudgetMeter::new(budget);
    let mut x = vec![false; n];
    let mut energy = qubo.energy(&x);
    let mut best = energy;
    let mut best_bits = x.clone();
    let mut degeneracy = 1usize;
    let total = 1usize << n;
    for k in 1..total {
        if (k % EXACT_POLL_STRIDE == 0 && meter.interrupted()) || !meter.try_propose() {
            break;
        }
        // Gray code: bit to flip is the trailing-zero count of k.
        let i = k.trailing_zeros() as usize;
        energy += qubo.delta_energy(&x, i);
        x[i] = !x[i];
        if energy < best - 1e-12 {
            best = energy;
            best_bits = x.clone();
            degeneracy = 1;
        } else if (energy - best).abs() <= 1e-12 {
            degeneracy += 1;
        }
    }
    (
        ExactSolution {
            bits: best_bits,
            energy: best,
            degeneracy,
        },
        meter.exhausted(),
    )
}

/// The full sorted spectrum (energy per assignment index); for spectral
/// plots and solver-gap analysis on tiny instances (`n ≤ 16`). Walks the
/// hypercube in Gray-code order like [`solve_exact`], so the whole
/// spectrum costs `O(2ⁿ·n)` instead of the `O(2ⁿ·n²)` of evaluating
/// `energy_of_index` per assignment.
pub fn spectrum(qubo: &Qubo) -> Vec<f64> {
    let n = qubo.n();
    assert!(n <= 16, "spectrum enumeration too large");
    let total = 1usize << n;
    let mut energies = Vec::with_capacity(total);
    let mut x = vec![false; n];
    let mut energy = qubo.energy(&x);
    energies.push(energy);
    for k in 1..total {
        let i = k.trailing_zeros() as usize;
        energy += qubo.delta_energy(&x, i);
        x[i] = !x[i];
        energies.push(energy);
    }
    energies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    energies
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_code_enumeration_matches_direct() {
        let mut q = Qubo::new(8);
        let mut rng = qmldb_math::Rng64::new(1301);
        for i in 0..8 {
            q.add_linear(i, rng.uniform_range(-1.0, 1.0));
            for j in (i + 1)..8 {
                if rng.chance(0.4) {
                    q.add(i, j, rng.uniform_range(-1.0, 1.0));
                }
            }
        }
        let fast = solve_exact(&q);
        let direct = (0..256usize)
            .map(|idx| q.energy_of_index(idx))
            .fold(f64::INFINITY, f64::min);
        assert!((fast.energy - direct).abs() < 1e-10);
        assert!((q.energy(&fast.bits) - fast.energy).abs() < 1e-10);
    }

    #[test]
    fn degeneracy_counts_symmetric_optima() {
        // E = x0 + x1 − 2x0x1: minima at (0,0) and (1,1), both energy 0.
        let mut q = Qubo::new(2);
        q.add_linear(0, 1.0);
        q.add_linear(1, 1.0);
        q.add(0, 1, -2.0);
        let sol = solve_exact(&q);
        assert_eq!(sol.energy, 0.0);
        assert_eq!(sol.degeneracy, 2);
    }

    #[test]
    fn spectrum_is_sorted_and_complete() {
        let mut q = Qubo::new(3);
        q.add_linear(0, -1.0);
        q.add(1, 2, 2.0);
        let spec = spectrum(&q);
        assert_eq!(spec.len(), 8);
        for w in spec.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(spec[0], solve_exact(&q).energy);
    }

    #[test]
    #[should_panic(expected = "refused")]
    fn oversized_enumeration_panics() {
        solve_exact(&Qubo::new(30));
    }

    #[test]
    fn budget_cuts_the_walk_deterministically() {
        let mut q = Qubo::new(10);
        let mut rng = qmldb_math::Rng64::new(1309);
        for i in 0..10 {
            q.add_linear(i, rng.uniform_range(-1.0, 1.0));
            for j in (i + 1)..10 {
                if rng.chance(0.4) {
                    q.add(i, j, rng.uniform_range(-1.0, 1.0));
                }
            }
        }
        // A roomy budget completes the walk and matches the plain solver.
        let full = solve_exact(&q);
        let (roomy, roomy_cut) = solve_exact_with_budget(&q, &Budget::proposals(u64::MAX));
        assert_eq!(roomy, full);
        assert!(!roomy_cut);

        // A 100-step bound enumerates exactly the first 101 assignments
        // (start + 100 Gray-code steps): same result every call, anchored,
        // and no better than the full optimum.
        let (a, a_cut) = solve_exact_with_budget(&q, &Budget::proposals(100));
        let (b, b_cut) = solve_exact_with_budget(&q, &Budget::proposals(100));
        assert!(a_cut && b_cut);
        assert_eq!(a, b);
        assert!((q.energy(&a.bits) - a.energy).abs() < 1e-10);
        assert!(a.energy >= full.energy - 1e-12);

        // A pre-cancelled budget returns the all-false start state.
        use crate::budget::CancelToken;
        let token = CancelToken::new();
        token.cancel();
        let (cut, was_cut) = solve_exact_with_budget(&q, &Budget::proposals(0).with_cancel(token));
        assert!(was_cut);
        assert!(cut.bits.iter().all(|&b| !b));
    }

    #[test]
    fn spectrum_gray_code_matches_index_formula() {
        // The Gray-code walk must produce the same multiset of energies as
        // the old per-index O(n²) formula, up to incremental-update
        // rounding.
        let mut rng = qmldb_math::Rng64::new(1307);
        for n in [1usize, 2, 5, 9] {
            let mut q = Qubo::new(n);
            q.add_offset(rng.uniform_range(-1.0, 1.0));
            for i in 0..n {
                q.add_linear(i, rng.uniform_range(-2.0, 2.0));
                for j in (i + 1)..n {
                    if rng.chance(0.6) {
                        q.add(i, j, rng.uniform_range(-2.0, 2.0));
                    }
                }
            }
            let fast = spectrum(&q);
            let mut direct: Vec<f64> = (0..(1usize << n))
                .map(|idx| q.energy_of_index(idx))
                .collect();
            direct.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(fast.len(), direct.len());
            for (a, b) in fast.iter().zip(&direct) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }
}
