//! Unified solve budgets, deadlines, and cooperative cancellation.
//!
//! Every solver in this crate (and the portfolio / service layers above
//! it) terminates through one [`Budget`] instead of bespoke iteration
//! knobs. A budget bounds a solve three ways, combinable:
//!
//! * **proposal count** — exact total delta-evaluations across all
//!   restarts/chains/shards. Split deterministically across parallel
//!   units *before* dispatch ([`Budget::split`]), so a proposal-bounded
//!   run is bit-identical for any `QMLDB_THREADS`.
//! * **sweep count** — caps each restart's (or chain pass's / round's)
//!   sweeps below the schedule's. Also an exact work count.
//! * **wall-clock deadline** — the explicitly *nondeterministic* opt-in,
//!   checked only at sweep/round boundaries (never inside a hot loop).
//!
//! A [`CancelToken`] rides along for cooperative cancellation: callers
//! keep a clone, the solver polls it at the same boundaries as the
//! deadline. Cancelled or expired runs still return their best state so
//! far — the *anytime contract* — and report `exhausted = true`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag, cheap to clone and share across
/// threads. Solvers poll it at sweep/round boundaries; they never abort
/// mid-sweep, so a cancelled run's partial work is still well-formed.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once any clone has called [`CancelToken::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A unified solve budget: any combination of an exact proposal count,
/// an exact sweep cap, a wall-clock deadline, and a cancel token. The
/// default ([`Budget::unlimited`]) imposes nothing — solvers then run
/// their schedule exactly as their params describe.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    proposals: Option<u64>,
    sweeps: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// No bound at all: solvers run their full schedule.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Bound the total proposals (delta-evaluations) across all parallel
    /// units. Deterministic: the count is split exactly across units
    /// before dispatch.
    pub fn proposals(n: u64) -> Self {
        Budget::unlimited().with_proposals(n)
    }

    /// Cap each restart/chain-pass at `n` sweeps (below the schedule's
    /// own sweep count). Deterministic.
    pub fn sweeps(n: u64) -> Self {
        Budget::unlimited().with_sweeps(n)
    }

    /// Stop at a wall-clock instant — the nondeterministic opt-in,
    /// checked at sweep/round boundaries only.
    pub fn deadline(at: Instant) -> Self {
        Budget::unlimited().with_deadline(at)
    }

    /// Deadline `d` from now.
    pub fn deadline_in(d: Duration) -> Self {
        Budget::deadline(Instant::now() + d)
    }

    /// Adds/replaces the proposal bound.
    pub fn with_proposals(mut self, n: u64) -> Self {
        self.proposals = Some(n);
        self
    }

    /// Adds/replaces the sweep cap.
    pub fn with_sweeps(mut self, n: u64) -> Self {
        self.sweeps = Some(n);
        self
    }

    /// Adds/replaces the deadline.
    pub fn with_deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Attaches a cancel token (polled at the same boundaries as the
    /// deadline).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// True when no bound of any kind is set — solvers may skip all
    /// bookkeeping.
    pub fn is_unlimited(&self) -> bool {
        self.proposals.is_none()
            && self.sweeps.is_none()
            && self.deadline.is_none()
            && self.cancel.is_none()
    }

    /// The proposal bound, if any.
    pub fn proposal_limit(&self) -> Option<u64> {
        self.proposals
    }

    /// The sweep cap, if any.
    pub fn sweep_limit(&self) -> Option<u64> {
        self.sweeps
    }

    /// The deadline, if any.
    pub fn deadline_at(&self) -> Option<Instant> {
        self.deadline
    }

    /// Deadline passed or cancellation requested — the nondeterministic
    /// boundary check. False for work-count-only budgets, so hot paths
    /// bounded purely by proposals/sweeps never read the clock.
    pub fn interrupted(&self) -> bool {
        if let Some(t) = &self.cancel {
            if t.is_cancelled() {
                return true;
            }
        }
        match self.deadline {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// This budget's share for parallel unit `index` of `parts`: the
    /// proposal bound is divided exactly (earlier units absorb the
    /// remainder, so the shares always sum to the total); sweep cap,
    /// deadline, and token are shared as-is. Splitting is done serially
    /// before dispatch, which is what keeps proposal-bounded runs
    /// bit-identical for any thread count.
    pub fn split(&self, parts: usize, index: usize) -> Budget {
        let mut out = self.clone();
        out.proposals = self.proposals.map(|n| exact_share(n, parts, index));
        out
    }
}

/// Unit `index`'s share when `total` units of work are divided across
/// `parts` workers: `total/parts`, with the first `total % parts`
/// workers taking one extra. Shares sum to `total` exactly.
pub fn exact_share(total: u64, parts: usize, index: usize) -> u64 {
    let parts = parts.max(1) as u64;
    total / parts + u64::from((index as u64) < total % parts)
}

/// One parallel unit's running view of a [`Budget`]: its exact proposal
/// share plus the shared sweep cap, deadline, and token. Solvers create
/// one per restart/chain/round loop and drive it from the loop body.
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    budget: Budget,
    used: u64,
    exhausted: bool,
}

impl BudgetMeter {
    /// A meter over the whole budget (single serial loop).
    pub fn new(budget: &Budget) -> Self {
        BudgetMeter {
            budget: budget.clone(),
            used: 0,
            exhausted: false,
        }
    }

    /// A meter over parallel unit `index`'s split of the budget.
    pub fn for_unit(budget: &Budget, parts: usize, index: usize) -> Self {
        BudgetMeter::new(&budget.split(parts, index))
    }

    /// Caps a schedule's sweep count by the budget's. Marks the meter
    /// exhausted when the cap actually bites.
    pub fn sweep_cap(&mut self, schedule: usize) -> usize {
        match self.budget.sweeps {
            Some(cap) if (cap as usize) < schedule => {
                self.exhausted = true;
                cap as usize
            }
            _ => schedule,
        }
    }

    /// Consumes one proposal. Returns false (and marks the meter
    /// exhausted) once this unit's share is spent — the caller must then
    /// break out of its sweep.
    #[inline]
    pub fn try_propose(&mut self) -> bool {
        if let Some(cap) = self.budget.proposals {
            if self.used >= cap {
                self.exhausted = true;
                return false;
            }
        }
        self.used += 1;
        true
    }

    /// Consumes `n` proposals at once (for loops whose unit of work is a
    /// whole scan, e.g. tabu's candidate pass). Returns false without
    /// consuming when fewer than `n` remain.
    #[inline]
    pub fn try_consume(&mut self, n: u64) -> bool {
        if let Some(cap) = self.budget.proposals {
            if self.used + n > cap {
                self.exhausted = true;
                return false;
            }
        }
        self.used += n;
        true
    }

    /// Records work done outside proposal accounting (e.g. greedy polish
    /// passes) without bounding it.
    #[inline]
    pub fn record(&mut self, n: u64) {
        self.used += n;
    }

    /// The nondeterministic boundary check (deadline/cancel); marks the
    /// meter exhausted when it fires.
    pub fn interrupted(&mut self) -> bool {
        if self.budget.interrupted() {
            self.exhausted = true;
            return true;
        }
        false
    }

    /// Proposals consumed through this meter.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// True once any bound cut the run short of its full schedule.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_imposes_nothing() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.interrupted());
        let mut m = BudgetMeter::new(&b);
        assert_eq!(m.sweep_cap(500), 500);
        for _ in 0..10_000 {
            assert!(m.try_propose());
        }
        assert_eq!(m.used(), 10_000);
        assert!(!m.exhausted());
    }

    #[test]
    fn exact_share_sums_to_total_and_front_loads_remainder() {
        for (total, parts) in [(10u64, 3usize), (7, 4), (0, 5), (5, 1), (3, 8)] {
            let shares: Vec<u64> = (0..parts).map(|i| exact_share(total, parts, i)).collect();
            assert_eq!(shares.iter().sum::<u64>(), total, "{total}/{parts}");
            for w in shares.windows(2) {
                assert!(w[0] >= w[1], "front-loaded: {shares:?}");
            }
        }
        assert_eq!(exact_share(10, 0, 0), 10); // degenerate parts clamp
    }

    #[test]
    fn proposal_meter_stops_exactly_at_the_share() {
        let b = Budget::proposals(10);
        let mut m = BudgetMeter::for_unit(&b, 3, 0); // share = 4
        let mut n = 0;
        while m.try_propose() {
            n += 1;
        }
        assert_eq!(n, 4);
        assert!(m.exhausted());
        assert_eq!(m.used(), 4);
        // Further calls stay refused.
        assert!(!m.try_propose());
        assert_eq!(m.used(), 4);
    }

    #[test]
    fn bulk_consume_refuses_partial_scans() {
        let b = Budget::proposals(10);
        let mut m = BudgetMeter::new(&b);
        assert!(m.try_consume(4));
        assert!(m.try_consume(4));
        assert!(!m.try_consume(4)); // only 2 left: refused, not consumed
        assert_eq!(m.used(), 8);
        assert!(m.exhausted());
    }

    #[test]
    fn sweep_cap_only_marks_exhausted_when_it_bites() {
        let mut m = BudgetMeter::new(&Budget::sweeps(100));
        assert_eq!(m.sweep_cap(50), 50);
        assert!(!m.exhausted());
        assert_eq!(m.sweep_cap(500), 100);
        assert!(m.exhausted());
    }

    #[test]
    fn cancel_token_interrupts_all_clones() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        let mut m = BudgetMeter::new(&b);
        assert!(!m.interrupted());
        token.cancel();
        assert!(m.interrupted());
        assert!(m.exhausted());
        assert!(token.is_cancelled());
    }

    #[test]
    fn expired_deadline_interrupts() {
        let b = Budget::deadline(Instant::now() - Duration::from_millis(1));
        assert!(b.interrupted());
        let mut m = BudgetMeter::new(&b);
        assert!(m.interrupted());
        assert!(m.exhausted());
    }

    #[test]
    fn split_divides_proposals_and_shares_the_rest() {
        let token = CancelToken::new();
        let b = Budget::proposals(7)
            .with_sweeps(3)
            .with_cancel(token.clone());
        let s0 = b.split(2, 0);
        let s1 = b.split(2, 1);
        assert_eq!(s0.proposal_limit(), Some(4));
        assert_eq!(s1.proposal_limit(), Some(3));
        assert_eq!(s0.sweep_limit(), Some(3));
        token.cancel();
        assert!(s0.interrupted() && s1.interrupted());
    }
}
