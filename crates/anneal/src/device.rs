//! A simulated quantum-annealing *device*: the full deployment path a real
//! annealer imposes.
//!
//! Logical problem → minor embedding on the Chimera fabric → physical
//! Ising with ferromagnetic chain couplings → (simulated quantum)
//! annealing on the *physical* graph → majority-vote unembedding, with
//! chain-break accounting. This is the piece that turns the clean QUBO
//! abstraction into what D-Wave-class hardware actually solves, and what
//! experiment E17 measures.

use crate::embed::{clique_embedding, embed_with_retries, Chimera, Embedding};
use crate::ising::{spins_to_bits, Ising};
use crate::qubo::Qubo;
use crate::sqa::{simulated_quantum_annealing, SqaParams};
use qmldb_math::Rng64;

/// Configuration of the simulated annealer device.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Chimera grid dimension.
    pub fabric_m: usize,
    /// Chain coupling strength as a multiple of the logical energy scale.
    pub chain_strength_factor: f64,
    /// Annealing schedule of the physical solve.
    pub schedule: SqaParams,
    /// Number of reads (independent anneal runs).
    pub reads: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            fabric_m: 4,
            chain_strength_factor: 1.5,
            schedule: SqaParams {
                sweeps: 300,
                replicas: 12,
                restarts: 1,
                ..SqaParams::default()
            },
            reads: 10,
        }
    }
}

/// Errors from a device run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The problem could not be embedded on the configured fabric.
    EmbeddingFailed,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::EmbeddingFailed => write!(f, "minor embedding failed"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Result of a device solve.
#[derive(Clone, Debug)]
pub struct DeviceResult {
    /// Best logical assignment found (QUBO bits).
    pub bits: Vec<bool>,
    /// Its logical energy.
    pub energy: f64,
    /// Fraction of (read, chain) pairs whose chain was broken (members
    /// disagreed) and needed majority-vote repair.
    pub chain_break_fraction: f64,
    /// Physical qubits used by the embedding.
    pub physical_qubits: usize,
    /// Longest chain in the embedding.
    pub max_chain_length: usize,
}

/// The simulated annealer device.
#[derive(Clone, Debug)]
pub struct AnnealerDevice {
    fabric: Chimera,
    config: DeviceConfig,
}

impl AnnealerDevice {
    /// Creates a device over a `C(fabric_m)` Chimera fabric.
    pub fn new(config: DeviceConfig) -> Self {
        AnnealerDevice {
            fabric: Chimera::new(config.fabric_m),
            config,
        }
    }

    /// The physical fabric.
    pub fn fabric(&self) -> &Chimera {
        &self.fabric
    }

    /// Embeds the logical interaction graph of `ising`, preferring the
    /// greedy embedder and falling back to the native clique embedding.
    pub fn embed(&self, ising: &Ising, rng: &mut Rng64) -> Result<Embedding, DeviceError> {
        let edges: Vec<(usize, usize)> =
            ising.couplings().iter().map(|&(a, b, _)| (a, b)).collect();
        embed_with_retries(ising.n(), &edges, &self.fabric, 25, rng)
            .or_else(|| clique_embedding(ising.n(), &self.fabric))
            .ok_or(DeviceError::EmbeddingFailed)
    }

    /// Builds the physical Ising: logical fields are spread over chain
    /// members, logical couplings connect one physical coupler per edge,
    /// and chain members are tied with strong ferromagnetic couplings.
    pub fn physical_ising(&self, ising: &Ising, embedding: &Embedding) -> Ising {
        let chain_strength = self.config.chain_strength_factor * ising.energy_scale();
        // Map physical qubit -> dense physical index.
        let mut phys_index: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for chain in &embedding.chains {
            for &q in chain {
                let next = phys_index.len();
                phys_index.entry(q).or_insert(next);
            }
        }
        let n_phys = phys_index.len();
        let mut h = vec![0.0f64; n_phys];
        let mut couplings: Vec<(usize, usize, f64)> = Vec::new();

        for (v, chain) in embedding.chains.iter().enumerate() {
            // Spread the logical field across the chain.
            let share = ising.fields()[v] / chain.len() as f64;
            for &q in chain {
                h[phys_index[&q]] += share;
            }
            // Ferromagnetic chain bonds along fabric couplers inside the
            // chain (spanning structure suffices; we add all internal
            // couplers present in the fabric).
            for (i, &qa) in chain.iter().enumerate() {
                for &qb in &chain[i + 1..] {
                    if self.fabric.connected(qa, qb) {
                        couplings.push((phys_index[&qa], phys_index[&qb], -chain_strength));
                    }
                }
            }
        }
        // Logical couplings: place on the first available physical coupler
        // between the two chains.
        for &(a, b, j) in ising.couplings() {
            let mut placed = false;
            'outer: for &qa in &embedding.chains[a] {
                for &qb in &embedding.chains[b] {
                    if self.fabric.connected(qa, qb) {
                        couplings.push((phys_index[&qa], phys_index[&qb], j));
                        placed = true;
                        break 'outer;
                    }
                }
            }
            assert!(placed, "embedding lacks coupler for logical edge ({a},{b})");
        }
        Ising::new(h, couplings, ising.offset())
    }

    /// Solves a QUBO end to end on the device.
    pub fn solve(&self, qubo: &Qubo, rng: &mut Rng64) -> Result<DeviceResult, DeviceError> {
        let logical = qubo.to_ising();
        let embedding = self.embed(&logical, rng)?;
        let physical = self.physical_ising(&logical, &embedding);

        // Dense-index lookup mirroring physical_ising's mapping.
        let mut phys_index: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for chain in &embedding.chains {
            for &q in chain {
                let next = phys_index.len();
                phys_index.entry(q).or_insert(next);
            }
        }

        let mut best_bits: Vec<bool> = vec![false; logical.n()];
        let mut best_energy = f64::INFINITY;
        let mut broken = 0usize;
        let mut total_chains = 0usize;
        for _ in 0..self.config.reads.max(1) {
            let r = simulated_quantum_annealing(&physical, &self.config.schedule, rng);
            // Unembed by majority vote per chain.
            let mut spins = Vec::with_capacity(logical.n());
            for chain in &embedding.chains {
                total_chains += 1;
                let ups = chain
                    .iter()
                    .filter(|&&q| r.spins[phys_index[&q]] > 0)
                    .count();
                if ups != 0 && ups != chain.len() {
                    broken += 1;
                }
                spins.push(if 2 * ups >= chain.len() { 1i8 } else { -1 });
            }
            let bits = spins_to_bits(&spins);
            let e = qubo.energy(&bits);
            if e < best_energy {
                best_energy = e;
                best_bits = bits;
            }
        }
        Ok(DeviceResult {
            bits: best_bits,
            energy: best_energy,
            chain_break_fraction: broken as f64 / total_chains.max(1) as f64,
            physical_qubits: embedding.physical_qubits(),
            max_chain_length: embedding.max_chain_length(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;

    fn random_qubo(n: usize, seed: u64) -> Qubo {
        let mut rng = Rng64::new(seed);
        let mut q = Qubo::new(n);
        for i in 0..n {
            q.add_linear(i, rng.uniform_range(-1.0, 1.0));
            for j in (i + 1)..n {
                if rng.chance(0.5) {
                    q.add(i, j, rng.uniform_range(-1.0, 1.0));
                }
            }
        }
        q
    }

    #[test]
    fn device_solves_small_qubo_to_optimality() {
        let q = random_qubo(8, 2501);
        let exact = solve_exact(&q);
        let device = AnnealerDevice::new(DeviceConfig::default());
        let mut rng = Rng64::new(2502);
        let r = device.solve(&q, &mut rng).unwrap();
        assert!(
            (r.energy - exact.energy).abs() < 1e-9,
            "device {} vs exact {}",
            r.energy,
            exact.energy
        );
        assert!((q.energy(&r.bits) - r.energy).abs() < 1e-9);
    }

    #[test]
    fn physical_problem_is_larger_than_logical() {
        let q = random_qubo(8, 2503);
        let device = AnnealerDevice::new(DeviceConfig::default());
        let mut rng = Rng64::new(2504);
        let r = device.solve(&q, &mut rng).unwrap();
        assert!(r.physical_qubits >= 8);
        assert!(r.max_chain_length >= 1);
    }

    #[test]
    fn weak_chains_break_more_often_than_strong_chains() {
        let q = random_qubo(10, 2505);
        let weak = AnnealerDevice::new(DeviceConfig {
            chain_strength_factor: 0.05,
            ..DeviceConfig::default()
        });
        let strong = AnnealerDevice::new(DeviceConfig {
            chain_strength_factor: 3.0,
            ..DeviceConfig::default()
        });
        let mut rng = Rng64::new(2506);
        let wb = weak.solve(&q, &mut rng).unwrap().chain_break_fraction;
        let sb = strong.solve(&q, &mut rng).unwrap().chain_break_fraction;
        assert!(wb >= sb, "weak {wb} vs strong {sb}");
    }

    #[test]
    fn oversized_problem_reports_embedding_failure() {
        let q = random_qubo(20, 2507);
        let device = AnnealerDevice::new(DeviceConfig {
            fabric_m: 1, // 8 physical qubits
            ..DeviceConfig::default()
        });
        let mut rng = Rng64::new(2508);
        assert_eq!(
            device.solve(&q, &mut rng).unwrap_err(),
            DeviceError::EmbeddingFailed
        );
    }

    #[test]
    fn physical_ising_ground_state_recovers_logical_ground_state() {
        // With strong chains, unembedding the physical ground state must
        // give the logical ground state.
        let q = random_qubo(6, 2509);
        let logical = q.to_ising();
        let device = AnnealerDevice::new(DeviceConfig {
            chain_strength_factor: 4.0,
            ..DeviceConfig::default()
        });
        let mut rng = Rng64::new(2510);
        let embedding = device.embed(&logical, &mut rng).unwrap();
        let physical = device.physical_ising(&logical, &embedding);
        // Physical problem may exceed brute-force limits; use SQA hard.
        let r = simulated_quantum_annealing(
            &physical,
            &SqaParams {
                sweeps: 800,
                replicas: 16,
                restarts: 3,
                ..SqaParams::default()
            },
            &mut rng,
        );
        // Majority-vote unembed.
        let mut phys_index: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for chain in &embedding.chains {
            for &qq in chain {
                let next = phys_index.len();
                phys_index.entry(qq).or_insert(next);
            }
        }
        let spins: Vec<i8> = embedding
            .chains
            .iter()
            .map(|chain| {
                let ups = chain
                    .iter()
                    .filter(|&&qq| r.spins[phys_index[&qq]] > 0)
                    .count();
                if 2 * ups >= chain.len() {
                    1
                } else {
                    -1
                }
            })
            .collect();
        let exact = solve_exact(&q);
        let got = q.energy(&spins_to_bits(&spins));
        assert!(
            (got - exact.energy).abs() < 1e-9,
            "unembedded {got} vs exact {}",
            exact.energy
        );
    }
}
