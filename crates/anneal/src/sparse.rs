//! Sparse QUBO models for production-scale instances.
//!
//! The dense [`crate::qubo::Qubo`] stores all `n²` upper-triangular
//! coefficients — perfect for the ≤ few-hundred-variable workloads the
//! small experiments use, impossible at the 10⁵–10⁶ variables the
//! partitioned annealer ([`crate::partition`]) targets (10⁵ variables
//! would already be an 80 GB coefficient matrix). `SparseQubo` keeps only
//! the nonzero terms: a linear vector, merged `(i, j, w)` quadratic
//! terms, and the same flat [`CsrAdjacency`] every solver hot loop scans.

use crate::csr::CsrAdjacency;
use crate::ising::Ising;
use crate::qubo::Qubo;

/// A QUBO with sparse quadratic terms:
/// `E(x) = Σᵢ lᵢxᵢ + Σ_{i<j} wᵢⱼxᵢxⱼ + offset`.
#[derive(Clone, Debug)]
pub struct SparseQubo {
    n: usize,
    linear: Vec<f64>,
    /// Quadratic terms with `i < j`, duplicates merged, zeros dropped.
    quad: Vec<(usize, usize, f64)>,
    /// Symmetric CSR adjacency over the quadratic terms.
    adj: CsrAdjacency,
    offset: f64,
}

impl SparseQubo {
    /// Builds a model from linear and quadratic terms. Duplicate
    /// quadratic terms are summed; diagonal terms are rejected (fold them
    /// into `linear` — `x² = x` for binaries).
    pub fn from_terms(linear: Vec<f64>, quad: Vec<(usize, usize, f64)>, offset: f64) -> Self {
        let n = linear.len();
        let mut merged: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        for (a, b, w) in quad {
            assert!(a < n && b < n, "quadratic term out of range");
            assert_ne!(a, b, "diagonal quadratic term (fold into linear)");
            let key = if a < b { (a, b) } else { (b, a) };
            *merged.entry(key).or_insert(0.0) += w;
        }
        let quad: Vec<(usize, usize, f64)> = merged
            .into_iter()
            .filter(|&(_, w)| w != 0.0)
            .map(|((a, b), w)| (a, b, w))
            .collect();
        let adj = CsrAdjacency::from_edges(n, &quad);
        SparseQubo {
            n,
            linear,
            quad,
            adj,
            offset,
        }
    }

    /// Number of binary variables.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nonzero quadratic terms.
    pub fn nnz(&self) -> usize {
        self.quad.len()
    }

    /// Linear coefficients.
    pub fn linear(&self) -> &[f64] {
        &self.linear
    }

    /// Quadratic terms as `(i, j, w)` with `i < j`.
    pub fn quadratic(&self) -> &[(usize, usize, f64)] {
        &self.quad
    }

    /// Constant offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// The flat CSR adjacency over the quadratic terms (borrowed — built
    /// once at construction, never rebuilt).
    pub fn adjacency(&self) -> &CsrAdjacency {
        &self.adj
    }

    /// Energy of an assignment, O(n + nnz).
    pub fn energy(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.n, "assignment length");
        let mut e = self.offset;
        for (i, &l) in self.linear.iter().enumerate() {
            if x[i] {
                e += l;
            }
        }
        for &(a, b, w) in &self.quad {
            if x[a] && x[b] {
                e += w;
            }
        }
        e
    }

    /// Energy change from flipping variable `i`, O(degree).
    pub fn delta_energy(&self, x: &[bool], i: usize) -> f64 {
        let mut contrib = self.linear[i];
        for (j, w) in self.adj.iter_row(i) {
            if x[j] {
                contrib += w;
            }
        }
        if x[i] {
            -contrib
        } else {
            contrib
        }
    }

    /// Converts to the equivalent Ising model via `xᵢ = (1 + sᵢ)/2`,
    /// preserving energies exactly — the sparse analogue of
    /// [`Qubo::to_ising`], O(n + nnz) instead of O(n²).
    pub fn to_ising(&self) -> Ising {
        let n = self.n;
        let mut h = vec![0.0f64; n];
        let mut couplings = Vec::with_capacity(self.quad.len());
        let mut offset = self.offset;
        for (i, &l) in self.linear.iter().enumerate() {
            h[i] += l / 2.0;
            offset += l / 2.0;
        }
        for &(a, b, w) in &self.quad {
            couplings.push((a, b, w / 4.0));
            h[a] += w / 4.0;
            h[b] += w / 4.0;
            offset += w / 4.0;
        }
        Ising::new(h, couplings, offset)
    }

    /// Expands to the dense representation — only for small cross-checks.
    pub fn to_dense(&self) -> Qubo {
        let mut q = Qubo::new(self.n);
        for (i, &l) in self.linear.iter().enumerate() {
            q.add_linear(i, l);
        }
        for &(a, b, w) in &self.quad {
            q.add(a, b, w);
        }
        q.add_offset(self.offset);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmldb_math::Rng64;

    fn random_sparse(n: usize, degree: usize, rng: &mut Rng64) -> SparseQubo {
        let linear: Vec<f64> = (0..n).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let mut quad = Vec::new();
        for i in 0..n {
            for _ in 0..degree {
                let j = rng.index(n);
                if j != i {
                    quad.push((i, j, rng.uniform_range(-1.0, 1.0)));
                }
            }
        }
        SparseQubo::from_terms(linear, quad, rng.uniform_range(-2.0, 2.0))
    }

    #[test]
    fn energy_matches_dense_expansion() {
        let mut rng = Rng64::new(41);
        let q = random_sparse(12, 3, &mut rng);
        let dense = q.to_dense();
        for _ in 0..50 {
            let x: Vec<bool> = (0..12).map(|_| rng.chance(0.5)).collect();
            assert!((q.energy(&x) - dense.energy(&x)).abs() < 1e-9);
        }
    }

    #[test]
    fn delta_energy_matches_recomputation() {
        let mut rng = Rng64::new(43);
        let q = random_sparse(10, 3, &mut rng);
        let mut x: Vec<bool> = (0..10).map(|_| rng.chance(0.5)).collect();
        for i in 0..10 {
            let before = q.energy(&x);
            let d = q.delta_energy(&x, i);
            x[i] = !x[i];
            let after = q.energy(&x);
            x[i] = !x[i];
            assert!((after - before - d).abs() < 1e-9, "flip {i}");
        }
    }

    #[test]
    fn ising_conversion_preserves_energy() {
        let mut rng = Rng64::new(47);
        let q = random_sparse(8, 2, &mut rng);
        let ising = q.to_ising();
        for idx in 0..256usize {
            let x: Vec<bool> = (0..8).map(|i| idx & (1 << i) != 0).collect();
            let s: Vec<i8> = x.iter().map(|&b| if b { 1 } else { -1 }).collect();
            assert!(
                (q.energy(&x) - ising.energy(&s)).abs() < 1e-9,
                "assignment {idx:08b}"
            );
        }
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let q = SparseQubo::from_terms(
            vec![0.0; 3],
            vec![(0, 1, 1.0), (1, 0, 0.5), (1, 2, -0.5), (2, 1, 0.5)],
            0.0,
        );
        assert_eq!(q.nnz(), 1);
        assert_eq!(q.quadratic(), &[(0, 1, 1.5)]);
    }

    #[test]
    #[should_panic(expected = "diagonal quadratic term")]
    fn diagonal_terms_rejected() {
        SparseQubo::from_terms(vec![0.0; 2], vec![(1, 1, 1.0)], 0.0);
    }
}
