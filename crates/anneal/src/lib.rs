//! QUBO/Ising models and annealing solvers.
//!
//! This crate is the workspace's stand-in for a quantum annealer: problems
//! are written as QUBOs (optionally via the penalty [`builder`]), converted
//! to Ising form, and attacked by a lineup of solvers —
//! [`sa`] simulated annealing, [`sqa`] path-integral simulated *quantum*
//! annealing (the standard classical emulation of annealer dynamics),
//! [`tempering`] parallel tempering, [`tabu`] search, and [`exact`]
//! enumeration as ground truth. [`embed`] models the hardware-connectivity
//! constraint (Chimera minor embedding) real annealers impose.
//!
//! # Example
//! ```
//! use qmldb_anneal::{Qubo, sa};
//! use qmldb_math::Rng64;
//!
//! let mut q = Qubo::new(2);
//! q.add_linear(0, -1.0);
//! q.add_linear(1, -1.0);
//! q.add(0, 1, 2.0);           // -x0 -x1 +2x0x1: optimum picks exactly one
//! let ising = q.to_ising();
//! let mut rng = Rng64::new(7);
//! let r = sa::simulated_annealing(&ising, &sa::SaParams::default(), &mut rng);
//! assert!((r.energy + 1.0).abs() < 1e-9);
//! ```

pub mod budget;
pub mod builder;
pub mod csr;
pub mod device;
pub mod embed;
pub mod exact;
pub mod field;
pub mod ising;
pub mod partition;
pub mod qubo;
pub mod sa;
pub mod sig;
pub mod sparse;
pub mod sqa;
pub mod tabu;
pub mod tempering;

pub use budget::{exact_share, Budget, BudgetMeter, CancelToken};
pub use builder::{
    at_most_k_slack_weights, slack_assignment, ConstraintGroup, ConstraintKind, Constraints,
    QuboBuilder,
};
pub use csr::CsrAdjacency;
pub use device::{AnnealerDevice, DeviceConfig, DeviceResult};
pub use embed::{Chimera, Embedding};
pub use exact::{solve_exact, solve_exact_with_budget, ExactSolution};
pub use field::{IsingFields, QuboFields};
pub use ising::{bits_to_spins, spins_to_bits, Ising};
pub use partition::{
    embedding_shard_budget, partition_graph, sharded_anneal, sharded_anneal_qubo,
    sharded_anneal_with_budget, Partition, ShardedParams, ShardedResult,
};
pub use qubo::Qubo;
pub use sa::{simulated_annealing, simulated_annealing_with_budget, AnnealResult, SaParams};
pub use sig::{fnv1a, qubo_signature, sparse_signature, split_signature, FNV_OFFSET};
pub use sparse::SparseQubo;
pub use sqa::{simulated_quantum_annealing, simulated_quantum_annealing_with_budget, SqaParams};
pub use tabu::{tabu_search, tabu_search_with_budget, TabuParams, TabuResult};
pub use tempering::{parallel_tempering, parallel_tempering_with_budget, TemperingParams};
