//! Chimera topology and greedy minor embedding.
//!
//! Physical annealers do not offer all-to-all connectivity: D-Wave's
//! Chimera graph is a grid of K₄,₄ unit cells. A logical problem graph is
//! *minor-embedded* by mapping each logical variable to a connected chain
//! of physical qubits. This module builds the topology, runs a greedy
//! path-based embedder, and reports the qubit-overhead statistics the
//! embedding experiment (E16) measures.

use qmldb_math::Rng64;
use std::collections::{HashMap, HashSet, VecDeque};

/// A Chimera graph `C(m)`: an `m×m` grid of K₄,₄ cells.
#[derive(Clone, Debug)]
pub struct Chimera {
    m: usize,
    adjacency: Vec<Vec<usize>>,
}

impl Chimera {
    /// Builds `C(m)` with `8·m²` physical qubits.
    ///
    /// Qubit numbering: cell `(r, c)` holds qubits
    /// `8(r·m + c) + k` with `k < 4` the "left" side and `k ≥ 4` the
    /// "right" side of the bipartite cell.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "empty Chimera");
        let n = 8 * m * m;
        let mut adjacency = vec![Vec::new(); n];
        let add = |a: usize, b: usize, adj: &mut Vec<Vec<usize>>| {
            adj[a].push(b);
            adj[b].push(a);
        };
        for r in 0..m {
            for c in 0..m {
                let base = 8 * (r * m + c);
                // Intra-cell K4,4.
                for l in 0..4 {
                    for rr in 4..8 {
                        add(base + l, base + rr, &mut adjacency);
                    }
                }
                // Inter-cell couplers: left side connects vertically,
                // right side horizontally.
                if r + 1 < m {
                    let below = 8 * ((r + 1) * m + c);
                    for l in 0..4 {
                        add(base + l, below + l, &mut adjacency);
                    }
                }
                if c + 1 < m {
                    let right = 8 * (r * m + c + 1);
                    for k in 4..8 {
                        add(base + k, right + k, &mut adjacency);
                    }
                }
            }
        }
        Chimera { m, adjacency }
    }

    /// Grid dimension.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        8 * self.m * self.m
    }

    /// Physical neighbors of a qubit.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// True when two physical qubits share a coupler.
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].contains(&b)
    }
}

/// A minor embedding: each logical variable maps to a chain of physical
/// qubits.
#[derive(Clone, Debug)]
pub struct Embedding {
    /// chains[v] = physical qubits representing logical variable v.
    pub chains: Vec<Vec<usize>>,
}

impl Embedding {
    /// Total physical qubits used.
    pub fn physical_qubits(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Longest chain.
    pub fn max_chain_length(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean chain length.
    pub fn mean_chain_length(&self) -> f64 {
        if self.chains.is_empty() {
            return 0.0;
        }
        self.physical_qubits() as f64 / self.chains.len() as f64
    }

    /// Validates the embedding against a target and the logical edges:
    /// chains are disjoint and connected, and every logical edge has at
    /// least one physical coupler between its chains.
    pub fn validate(
        &self,
        target: &Chimera,
        logical_edges: &[(usize, usize)],
    ) -> Result<(), String> {
        let mut seen = HashSet::new();
        for (v, chain) in self.chains.iter().enumerate() {
            if chain.is_empty() {
                return Err(format!("variable {v} has an empty chain"));
            }
            for &q in chain {
                if !seen.insert(q) {
                    return Err(format!("qubit {q} used by two chains"));
                }
            }
            // Connectivity by BFS inside the chain.
            let set: HashSet<usize> = chain.iter().copied().collect();
            let mut visited = HashSet::new();
            let mut queue = VecDeque::from([chain[0]]);
            visited.insert(chain[0]);
            while let Some(q) = queue.pop_front() {
                for &nb in target.neighbors(q) {
                    if set.contains(&nb) && visited.insert(nb) {
                        queue.push_back(nb);
                    }
                }
            }
            if visited.len() != chain.len() {
                return Err(format!("chain of variable {v} is disconnected"));
            }
        }
        for &(a, b) in logical_edges {
            let ok = self.chains[a].iter().any(|&qa| {
                target
                    .neighbors(qa)
                    .iter()
                    .any(|&nb| self.chains[b].contains(&nb))
            });
            if !ok {
                return Err(format!("logical edge ({a},{b}) has no physical coupler"));
            }
        }
        Ok(())
    }
}

/// Greedy path-based minor embedding (a lightweight `minorminer`-style
/// heuristic): variables are placed in random order; each new variable is
/// seeded at a free qubit and grown along shortest free paths to each
/// already-placed neighbor.
///
/// Returns `None` when the heuristic fails (target too small or unlucky
/// order) — callers typically retry with another seed.
pub fn embed(
    n_vars: usize,
    logical_edges: &[(usize, usize)],
    target: &Chimera,
    rng: &mut Rng64,
) -> Option<Embedding> {
    let mut order: Vec<usize> = (0..n_vars).collect();
    // Highest-degree first tends to embed the hardest variables while the
    // fabric is still empty; break ties randomly.
    let mut degree = vec![0usize; n_vars];
    for &(a, b) in logical_edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    rng.shuffle(&mut order);
    order.sort_by_key(|&v| std::cmp::Reverse(degree[v]));

    let mut owner: HashMap<usize, usize> = HashMap::new(); // physical -> logical
    let mut chains: Vec<Vec<usize>> = vec![Vec::new(); n_vars];

    for &v in &order {
        let placed_neighbors: Vec<usize> = logical_edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == v && !chains[b].is_empty() {
                    Some(b)
                } else if b == v && !chains[a].is_empty() {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();

        if placed_neighbors.is_empty() {
            // Seed anywhere free.
            let free: Vec<usize> = (0..target.n_qubits())
                .filter(|q| !owner.contains_key(q))
                .collect();
            if free.is_empty() {
                return None;
            }
            let q = free[rng.index(free.len())];
            owner.insert(q, v);
            chains[v].push(q);
            continue;
        }

        // Grow a chain reaching all placed neighbors: start from the free
        // qubit adjacent to the first neighbor's chain, then BFS paths.
        let mut chain: Vec<usize> = Vec::new();
        for (k, &nb) in placed_neighbors.iter().enumerate() {
            // Sources: current chain if non-empty, else free qubits
            // adjacent to the first neighbor chain.
            let sources: Vec<usize> = if chain.is_empty() {
                chains[nb]
                    .iter()
                    .flat_map(|&q| target.neighbors(q).iter().copied())
                    .filter(|q| !owner.contains_key(q))
                    .collect()
            } else {
                chain.clone()
            };
            if chain.is_empty() {
                if sources.is_empty() {
                    return None;
                }
                let q = sources[rng.index(sources.len())];
                chain.push(q);
                owner.insert(q, v);
                if k == 0 {
                    continue;
                }
            }
            // BFS from the chain through free qubits to any qubit adjacent
            // to neighbor nb's chain.
            let goal: HashSet<usize> = chains[nb]
                .iter()
                .flat_map(|&q| target.neighbors(q).iter().copied())
                .collect();
            if chain.iter().any(|q| goal.contains(q)) {
                continue; // already adjacent
            }
            let mut prev: HashMap<usize, usize> = HashMap::new();
            let mut queue: VecDeque<usize> = chain.iter().copied().collect();
            let mut visited: HashSet<usize> = chain.iter().copied().collect();
            let mut reached: Option<usize> = None;
            while let Some(q) = queue.pop_front() {
                for &nbq in target.neighbors(q) {
                    if visited.contains(&nbq) || owner.contains_key(&nbq) {
                        continue;
                    }
                    visited.insert(nbq);
                    prev.insert(nbq, q);
                    if goal.contains(&nbq) {
                        reached = Some(nbq);
                        break;
                    }
                    queue.push_back(nbq);
                }
                if reached.is_some() {
                    break;
                }
            }
            let mut cur = reached?;
            // Walk the path back into the chain.
            let chain_set: HashSet<usize> = chain.iter().copied().collect();
            let mut path = vec![cur];
            while let Some(&p) = prev.get(&cur) {
                if chain_set.contains(&p) {
                    break;
                }
                path.push(p);
                cur = p;
            }
            for q in path {
                owner.insert(q, v);
                chain.push(q);
            }
        }
        chains[v] = chain;
    }
    Some(Embedding { chains })
}

/// Deterministic native clique embedding (Choi-style "L" chains): variable
/// `v = 4b + k` occupies right-side qubit `k` across row `b` plus left-side
/// qubit `k` down column `b`, joined at the diagonal cell. Embeds `K_{4m}`
/// into `C(m)` with chains of length `2m`.
///
/// Returns `None` when the fabric is too small (`n_vars > 4m`).
pub fn clique_embedding(n_vars: usize, target: &Chimera) -> Option<Embedding> {
    let m = target.m();
    if n_vars > 4 * m {
        return None;
    }
    let mut chains = Vec::with_capacity(n_vars);
    for v in 0..n_vars {
        let b = v / 4;
        let k = v % 4;
        let mut chain = Vec::with_capacity(2 * m);
        // Row b, right-side qubit k of each cell.
        for c in 0..m {
            chain.push(8 * (b * m + c) + 4 + k);
        }
        // Column b, left-side qubit k of each cell.
        for r in 0..m {
            chain.push(8 * (r * m + b) + k);
        }
        chains.push(chain);
    }
    Some(Embedding { chains })
}

/// Retries [`embed`] with fresh randomness up to `attempts` times, then
/// falls back to the deterministic [`clique_embedding`] (which dominates
/// any logical graph on the same variables).
pub fn embed_with_retries(
    n_vars: usize,
    logical_edges: &[(usize, usize)],
    target: &Chimera,
    attempts: usize,
    rng: &mut Rng64,
) -> Option<Embedding> {
    for _ in 0..attempts.max(1) {
        if let Some(e) = embed(n_vars, logical_edges, target, rng) {
            if e.validate(target, logical_edges).is_ok() {
                return Some(e);
            }
        }
    }
    if let Some(e) = clique_embedding(n_vars, target) {
        if e.validate(target, logical_edges).is_ok() {
            return Some(e);
        }
    }
    None
}

/// A complete graph's edge list (the worst-case logical topology that
/// QUBO formulations of join ordering produce).
pub fn complete_graph_edges(n: usize) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((i, j));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chimera_size_and_degree() {
        let c = Chimera::new(2);
        assert_eq!(c.n_qubits(), 32);
        // Interior left-side qubits: 4 intra + up to 2 vertical.
        for q in 0..c.n_qubits() {
            let d = c.neighbors(q).len();
            assert!((4..=6).contains(&d), "qubit {q} degree {d}");
        }
    }

    #[test]
    fn chimera_cell_is_bipartite() {
        let c = Chimera::new(1);
        // No edges within the left or right side of a cell.
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(!c.connected(a, b));
                    assert!(!c.connected(4 + a, 4 + b));
                }
            }
        }
        for l in 0..4 {
            for r in 4..8 {
                assert!(c.connected(l, r));
            }
        }
    }

    #[test]
    fn embeds_k4_into_single_cell_fabric() {
        let c = Chimera::new(2);
        let edges = complete_graph_edges(4);
        let mut rng = Rng64::new(1401);
        let e = embed_with_retries(4, &edges, &c, 50, &mut rng).expect("K4 should embed");
        e.validate(&c, &edges).unwrap();
        // K4 fits with modest chains; the greedy heuristic may use a few
        // extra qubits but should stay well under the 32-qubit fabric.
        assert!(e.physical_qubits() <= 16, "used {}", e.physical_qubits());
    }

    #[test]
    fn embeds_chain_graph_with_short_chains() {
        let c = Chimera::new(2);
        let edges: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 1)).collect();
        let mut rng = Rng64::new(1403);
        let e = embed_with_retries(6, &edges, &c, 20, &mut rng).expect("path should embed");
        e.validate(&c, &edges).unwrap();
        assert!(e.mean_chain_length() < 3.0);
    }

    #[test]
    fn larger_cliques_need_longer_chains() {
        let mut rng = Rng64::new(1405);
        let c = Chimera::new(6);
        let e4 = embed_with_retries(4, &complete_graph_edges(4), &c, 100, &mut rng).unwrap();
        let e8 = embed_with_retries(8, &complete_graph_edges(8), &c, 100, &mut rng).unwrap();
        assert!(
            e8.physical_qubits() > e4.physical_qubits(),
            "K8 must cost more qubits than K4"
        );
    }

    #[test]
    fn validation_rejects_overlapping_chains() {
        let c = Chimera::new(1);
        let bad = Embedding {
            chains: vec![vec![0], vec![0]],
        };
        assert!(bad.validate(&c, &[]).is_err());
    }

    #[test]
    fn validation_rejects_disconnected_chain() {
        let c = Chimera::new(1);
        // Qubits 0 and 1 are both "left side": not coupled.
        let bad = Embedding {
            chains: vec![vec![0, 1]],
        };
        assert!(bad.validate(&c, &[]).is_err());
    }

    #[test]
    fn validation_rejects_missing_logical_edge() {
        let c = Chimera::new(1);
        let e = Embedding {
            chains: vec![vec![0], vec![1]], // 0 and 1 not coupled
        };
        assert!(e.validate(&c, &[(0, 1)]).is_err());
    }

    #[test]
    fn clique_embedding_is_valid_for_full_k4m() {
        for m in 1..=4usize {
            let c = Chimera::new(m);
            let n = 4 * m;
            let e = clique_embedding(n, &c).unwrap();
            e.validate(&c, &complete_graph_edges(n)).unwrap();
            assert_eq!(e.max_chain_length(), 2 * m);
            assert_eq!(e.physical_qubits(), n * 2 * m);
        }
    }

    #[test]
    fn clique_embedding_rejects_oversized_cliques() {
        let c = Chimera::new(2);
        assert!(clique_embedding(9, &c).is_none());
    }

    #[test]
    fn embedding_too_big_for_fabric_fails_gracefully() {
        let c = Chimera::new(1); // 8 qubits
        let edges = complete_graph_edges(12);
        let mut rng = Rng64::new(1407);
        assert!(embed_with_retries(12, &edges, &c, 5, &mut rng).is_none());
    }
}
