//! Penalty-based QUBO construction.
//!
//! Constrained combinatorial problems (join ordering, index selection,
//! scheduling) become QUBOs by adding squared-penalty terms for each
//! constraint. The builder keeps the bookkeeping — variable allocation and
//! penalty expansion — in one audited place.

use crate::qubo::Qubo;

/// Incrementally builds a QUBO with named penalty helpers.
#[derive(Clone, Debug)]
pub struct QuboBuilder {
    qubo: Qubo,
}

impl QuboBuilder {
    /// Starts a builder over `n` binary variables.
    pub fn new(n: usize) -> Self {
        QuboBuilder { qubo: Qubo::new(n) }
    }

    /// Number of variables.
    pub fn n(&self) -> usize {
        self.qubo.n()
    }

    /// Adds an objective term `w·xᵢ`.
    pub fn linear(&mut self, i: usize, w: f64) -> &mut Self {
        self.qubo.add_linear(i, w);
        self
    }

    /// Adds an objective term `w·xᵢxⱼ`.
    pub fn quadratic(&mut self, i: usize, j: usize, w: f64) -> &mut Self {
        if i == j {
            self.qubo.add_linear(i, w);
        } else {
            self.qubo.add(i, j, w);
        }
        self
    }

    /// Adds a constant.
    pub fn constant(&mut self, v: f64) -> &mut Self {
        self.qubo.add_offset(v);
        self
    }

    /// Penalty `P·(Σ xᵢ − k)²` enforcing that exactly `k` of `vars` are 1.
    pub fn exactly_k(&mut self, vars: &[usize], k: usize, penalty: f64) -> &mut Self {
        // (Σx − k)² = Σxᵢ² + 2Σ_{i<j}xᵢxⱼ − 2kΣxᵢ + k²
        //           = Σxᵢ(1−2k) + 2Σ_{i<j}xᵢxⱼ + k²   (xᵢ² = xᵢ)
        let kf = k as f64;
        for (a, &i) in vars.iter().enumerate() {
            self.qubo.add_linear(i, penalty * (1.0 - 2.0 * kf));
            for &j in &vars[a + 1..] {
                self.qubo.add(i, j, 2.0 * penalty);
            }
        }
        self.qubo.add_offset(penalty * kf * kf);
        self
    }

    /// One-hot constraint: exactly one of `vars` is 1.
    pub fn one_hot(&mut self, vars: &[usize], penalty: f64) -> &mut Self {
        self.exactly_k(vars, 1, penalty)
    }

    /// Penalty `P·xᵢ·xⱼ` forbidding both variables being 1 together.
    pub fn not_both(&mut self, i: usize, j: usize, penalty: f64) -> &mut Self {
        self.qubo.add(i, j, penalty);
        self
    }

    /// Penalty `P·xᵢ(1−xⱼ)` enforcing the implication `xᵢ ⇒ xⱼ`.
    pub fn implies(&mut self, i: usize, j: usize, penalty: f64) -> &mut Self {
        self.qubo.add_linear(i, penalty);
        self.qubo.add(i, j, -penalty);
        self
    }

    /// Penalty `P·(Σ wᵢxᵢ − target)²` for a weighted equality (weights and
    /// target may be fractional).
    pub fn weighted_equality(
        &mut self,
        vars: &[usize],
        weights: &[f64],
        target: f64,
        penalty: f64,
    ) -> &mut Self {
        assert_eq!(vars.len(), weights.len(), "weights length");
        for (a, (&i, &wi)) in vars.iter().zip(weights).enumerate() {
            // wᵢ²xᵢ² − 2·target·wᵢxᵢ  (xᵢ² = xᵢ)
            self.qubo
                .add_linear(i, penalty * (wi * wi - 2.0 * target * wi));
            for (&j, &wj) in vars[a + 1..].iter().zip(&weights[a + 1..]) {
                self.qubo.add(i, j, 2.0 * penalty * wi * wj);
            }
        }
        self.qubo.add_offset(penalty * target * target);
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Qubo {
        self.qubo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1usize << n)).map(move |idx| (0..n).map(|i| idx & (1 << i) != 0).collect())
    }

    #[test]
    fn one_hot_penalizes_everything_but_single_assignments() {
        let mut b = QuboBuilder::new(3);
        b.one_hot(&[0, 1, 2], 10.0);
        let q = b.build();
        for x in assignments(3) {
            let ones = x.iter().filter(|&&v| v).count();
            let e = q.energy(&x);
            if ones == 1 {
                assert!(e.abs() < 1e-12, "{x:?}");
            } else {
                assert!(e >= 10.0 - 1e-12, "{x:?} energy {e}");
            }
        }
    }

    #[test]
    fn exactly_k_counts_correctly() {
        let mut b = QuboBuilder::new(4);
        b.exactly_k(&[0, 1, 2, 3], 2, 5.0);
        let q = b.build();
        for x in assignments(4) {
            let ones = x.iter().filter(|&&v| v).count() as f64;
            let expect = 5.0 * (ones - 2.0) * (ones - 2.0);
            assert!((q.energy(&x) - expect).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn implication_penalty_structure() {
        let mut b = QuboBuilder::new(2);
        b.implies(0, 1, 7.0);
        let q = b.build();
        assert_eq!(q.energy(&[false, false]), 0.0);
        assert_eq!(q.energy(&[false, true]), 0.0);
        assert_eq!(q.energy(&[true, true]), 0.0);
        assert_eq!(q.energy(&[true, false]), 7.0);
    }

    #[test]
    fn not_both_only_penalizes_joint_assignment() {
        let mut b = QuboBuilder::new(2);
        b.not_both(0, 1, 3.0);
        let q = b.build();
        assert_eq!(q.energy(&[true, true]), 3.0);
        assert_eq!(q.energy(&[true, false]), 0.0);
    }

    #[test]
    fn weighted_equality_is_squared_residual() {
        let mut b = QuboBuilder::new(3);
        b.weighted_equality(&[0, 1, 2], &[1.0, 2.0, 3.0], 3.0, 2.0);
        let q = b.build();
        for x in assignments(3) {
            let total: f64 = x
                .iter()
                .zip(&[1.0, 2.0, 3.0])
                .map(|(&b, w)| if b { *w } else { 0.0 })
                .sum();
            let expect = 2.0 * (total - 3.0) * (total - 3.0);
            assert!((q.energy(&x) - expect).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn objective_and_penalty_compose() {
        // Minimize -x0 - 2x1 subject to one-hot(x0, x1).
        let mut b = QuboBuilder::new(2);
        b.linear(0, -1.0).linear(1, -2.0).one_hot(&[0, 1], 10.0);
        let q = b.build();
        let best = assignments(2)
            .min_by(|a, b| q.energy(a).partial_cmp(&q.energy(b)).unwrap())
            .unwrap();
        assert_eq!(best, vec![false, true]);
    }
}
