//! Penalty-based QUBO construction.
//!
//! Constrained combinatorial problems (join ordering, index selection,
//! scheduling) become QUBOs by adding squared-penalty terms for each
//! constraint. The builder keeps the bookkeeping — variable allocation and
//! penalty expansion — in one audited place.
//!
//! Besides emitting penalty terms, the builder **records** every
//! constraint it expands as a [`ConstraintGroup`]. [`QuboBuilder::build_parts`]
//! returns the recorded [`Constraints`] next to the [`Qubo`], so downstream
//! code (feasibility checks, greedy repair, penalty escalation) can report
//! *which* constraint a candidate assignment violates and by how much,
//! instead of staring at an opaque energy number.

use crate::qubo::Qubo;

/// The kind of a recorded constraint group.
#[derive(Clone, Debug, PartialEq)]
pub enum ConstraintKind {
    /// Exactly `k` of the group's variables are 1.
    ExactlyK(usize),
    /// At most `k` of the group's variables are 1 (slack-encoded).
    AtMostK(usize),
    /// The weighted sum of the group's variables equals `target`.
    WeightedEquality(f64),
}

/// One constraint as recorded by the builder: the kind, the decision
/// variables it ranges over, and (for weighted equalities) their weights.
/// Slack variables introduced by inequality reductions are *not* listed —
/// violation is always measured on the decision variables, which is what
/// repair and feasibility care about.
#[derive(Clone, Debug)]
pub struct ConstraintGroup {
    /// What the constraint demands.
    pub kind: ConstraintKind,
    /// The decision variables it constrains.
    pub vars: Vec<usize>,
    /// Per-variable weights (empty ⇒ unit weights).
    pub weights: Vec<f64>,
}

impl ConstraintGroup {
    /// Violation magnitude of `bits` against this group: 0 when satisfied,
    /// otherwise how far the count / weighted sum is from the demanded
    /// value (in counts for cardinality constraints, in weight units for
    /// weighted equalities).
    pub fn violation(&self, bits: &[bool]) -> f64 {
        match self.kind {
            ConstraintKind::ExactlyK(k) => {
                let ones = self.vars.iter().filter(|&&v| bits[v]).count();
                (ones as f64 - k as f64).abs()
            }
            ConstraintKind::AtMostK(k) => {
                let ones = self.vars.iter().filter(|&&v| bits[v]).count();
                (ones as f64 - k as f64).max(0.0)
            }
            ConstraintKind::WeightedEquality(target) => {
                let total: f64 = self
                    .vars
                    .iter()
                    .zip(&self.weights)
                    .filter(|(&v, _)| bits[v])
                    .map(|(_, &w)| w)
                    .sum();
                let residual = (total - target).abs();
                let tol = 1e-6 * (1.0 + target.abs());
                if residual <= tol {
                    0.0
                } else {
                    residual
                }
            }
        }
    }

    /// True when `bits` satisfies this group.
    pub fn is_satisfied(&self, bits: &[bool]) -> bool {
        self.violation(bits) == 0.0
    }
}

/// All constraint groups recorded during a build, in insertion order.
#[derive(Clone, Debug, Default)]
pub struct Constraints {
    groups: Vec<ConstraintGroup>,
}

impl Constraints {
    /// The recorded groups.
    pub fn groups(&self) -> &[ConstraintGroup] {
        &self.groups
    }

    /// Number of recorded groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// `(group index, violation magnitude)` for every violated group.
    pub fn violations(&self, bits: &[bool]) -> Vec<(usize, f64)> {
        self.groups
            .iter()
            .enumerate()
            .filter_map(|(i, g)| {
                let v = g.violation(bits);
                (v > 0.0).then_some((i, v))
            })
            .collect()
    }

    /// Number of violated groups.
    pub fn n_violated(&self, bits: &[bool]) -> usize {
        self.groups.iter().filter(|g| !g.is_satisfied(bits)).count()
    }

    /// True when every group is satisfied.
    pub fn all_satisfied(&self, bits: &[bool]) -> bool {
        self.groups.iter().all(|g| g.is_satisfied(bits))
    }
}

/// Slack weights for the `count ≤ k` reduction: bounded binary
/// coefficients `1, 2, 4, …, 2^{m−2}, k+1−2^{m−1}` whose subset sums cover
/// exactly `0..=k`. Returns the empty vector for `k = 0` (the constraint
/// degenerates to "all zero", which needs no slack).
pub fn at_most_k_slack_weights(k: usize) -> Vec<f64> {
    if k == 0 {
        return Vec::new();
    }
    let m = (usize::BITS - k.leading_zeros()) as usize; // floor(log2 k) + 1
    let mut weights: Vec<f64> = (0..m - 1).map(|j| (1u64 << j) as f64).collect();
    weights.push((k + 1 - (1usize << (m - 1))) as f64);
    weights
}

/// Greedy subset-sum encoding of an integer `value` over slack `weights`
/// (largest weight first). Exact for plain binary weights and for the
/// bounded coefficients of [`at_most_k_slack_weights`] whenever
/// `value ≤ Σ weights`; used to set slack bits when encoding a known
/// feasible solution.
pub fn slack_assignment(weights: &[f64], value: f64) -> Vec<bool> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).unwrap().then(b.cmp(&a)));
    let mut bits = vec![false; weights.len()];
    let mut remaining = value.max(0.0);
    for &i in &order {
        if weights[i] <= remaining + 1e-9 {
            bits[i] = true;
            remaining -= weights[i];
        }
    }
    bits
}

/// Incrementally builds a QUBO with named penalty helpers.
#[derive(Clone, Debug)]
pub struct QuboBuilder {
    qubo: Qubo,
    constraints: Constraints,
}

impl QuboBuilder {
    /// Starts a builder over `n` binary variables.
    pub fn new(n: usize) -> Self {
        QuboBuilder {
            qubo: Qubo::new(n),
            constraints: Constraints::default(),
        }
    }

    /// Number of variables.
    pub fn n(&self) -> usize {
        self.qubo.n()
    }

    /// Adds an objective term `w·xᵢ`.
    pub fn linear(&mut self, i: usize, w: f64) -> &mut Self {
        self.qubo.add_linear(i, w);
        self
    }

    /// Adds an objective term `w·xᵢxⱼ`.
    pub fn quadratic(&mut self, i: usize, j: usize, w: f64) -> &mut Self {
        if i == j {
            self.qubo.add_linear(i, w);
        } else {
            self.qubo.add(i, j, w);
        }
        self
    }

    /// Adds a constant.
    pub fn constant(&mut self, v: f64) -> &mut Self {
        self.qubo.add_offset(v);
        self
    }

    /// Penalty `P·(Σ xᵢ − k)²` enforcing that exactly `k` of `vars` are 1.
    pub fn exactly_k(&mut self, vars: &[usize], k: usize, penalty: f64) -> &mut Self {
        // (Σx − k)² = Σxᵢ² + 2Σ_{i<j}xᵢxⱼ − 2kΣxᵢ + k²
        //           = Σxᵢ(1−2k) + 2Σ_{i<j}xᵢxⱼ + k²   (xᵢ² = xᵢ)
        let kf = k as f64;
        for (a, &i) in vars.iter().enumerate() {
            self.qubo.add_linear(i, penalty * (1.0 - 2.0 * kf));
            for &j in &vars[a + 1..] {
                self.qubo.add(i, j, 2.0 * penalty);
            }
        }
        self.qubo.add_offset(penalty * kf * kf);
        self.constraints.groups.push(ConstraintGroup {
            kind: ConstraintKind::ExactlyK(k),
            vars: vars.to_vec(),
            weights: Vec::new(),
        });
        self
    }

    /// One-hot constraint: exactly one of `vars` is 1.
    pub fn one_hot(&mut self, vars: &[usize], penalty: f64) -> &mut Self {
        self.exactly_k(vars, 1, penalty)
    }

    /// Penalty `P·(Σ xᵢ + Σ wⱼsⱼ − k)²` enforcing that at most `k` of
    /// `vars` are 1, via caller-allocated slack variables `slack_vars`
    /// whose weights ([`at_most_k_slack_weights`]) let the slack absorb
    /// any count in `0..=k`. `slack_vars.len()` must equal the weight
    /// count for `k`.
    pub fn at_most_k(
        &mut self,
        vars: &[usize],
        slack_vars: &[usize],
        k: usize,
        penalty: f64,
    ) -> &mut Self {
        let slack_weights = at_most_k_slack_weights(k);
        assert_eq!(
            slack_vars.len(),
            slack_weights.len(),
            "at_most_k({k}) needs exactly {} slack variables",
            slack_weights.len()
        );
        let all_vars: Vec<usize> = vars.iter().chain(slack_vars).copied().collect();
        let mut weights: Vec<f64> = vec![1.0; vars.len()];
        weights.extend_from_slice(&slack_weights);
        // Reuse the weighted-equality expansion, but record an AtMostK
        // group over the decision variables only (the slack is plumbing).
        self.weighted_equality_terms(&all_vars, &weights, k as f64, penalty);
        self.constraints.groups.push(ConstraintGroup {
            kind: ConstraintKind::AtMostK(k),
            vars: vars.to_vec(),
            weights: Vec::new(),
        });
        self
    }

    /// Penalty `P·xᵢ·xⱼ` forbidding both variables being 1 together.
    pub fn not_both(&mut self, i: usize, j: usize, penalty: f64) -> &mut Self {
        self.qubo.add(i, j, penalty);
        self
    }

    /// Penalty `P·xᵢ(1−xⱼ)` enforcing the implication `xᵢ ⇒ xⱼ`.
    pub fn implies(&mut self, i: usize, j: usize, penalty: f64) -> &mut Self {
        self.qubo.add_linear(i, penalty);
        self.qubo.add(i, j, -penalty);
        self
    }

    /// Penalty `P·(Σ wᵢxᵢ − target)²` for a weighted equality (weights and
    /// target may be fractional).
    pub fn weighted_equality(
        &mut self,
        vars: &[usize],
        weights: &[f64],
        target: f64,
        penalty: f64,
    ) -> &mut Self {
        self.weighted_equality_terms(vars, weights, target, penalty);
        self.constraints.groups.push(ConstraintGroup {
            kind: ConstraintKind::WeightedEquality(target),
            vars: vars.to_vec(),
            weights: weights.to_vec(),
        });
        self
    }

    /// The term expansion shared by `weighted_equality` and `at_most_k`;
    /// records nothing.
    fn weighted_equality_terms(
        &mut self,
        vars: &[usize],
        weights: &[f64],
        target: f64,
        penalty: f64,
    ) {
        assert_eq!(vars.len(), weights.len(), "weights length");
        for (a, (&i, &wi)) in vars.iter().zip(weights).enumerate() {
            // wᵢ²xᵢ² − 2·target·wᵢxᵢ  (xᵢ² = xᵢ)
            self.qubo
                .add_linear(i, penalty * (wi * wi - 2.0 * target * wi));
            for (&j, &wj) in vars[a + 1..].iter().zip(&weights[a + 1..]) {
                self.qubo.add(i, j, 2.0 * penalty * wi * wj);
            }
        }
        self.qubo.add_offset(penalty * target * target);
    }

    /// Finishes the build, discarding the constraint record.
    pub fn build(self) -> Qubo {
        self.qubo
    }

    /// Finishes the build, returning the QUBO together with every
    /// constraint recorded along the way.
    pub fn build_parts(self) -> (Qubo, Constraints) {
        (self.qubo, self.constraints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1usize << n)).map(move |idx| (0..n).map(|i| idx & (1 << i) != 0).collect())
    }

    #[test]
    fn one_hot_penalizes_everything_but_single_assignments() {
        let mut b = QuboBuilder::new(3);
        b.one_hot(&[0, 1, 2], 10.0);
        let q = b.build();
        for x in assignments(3) {
            let ones = x.iter().filter(|&&v| v).count();
            let e = q.energy(&x);
            if ones == 1 {
                assert!(e.abs() < 1e-12, "{x:?}");
            } else {
                assert!(e >= 10.0 - 1e-12, "{x:?} energy {e}");
            }
        }
    }

    #[test]
    fn exactly_k_counts_correctly() {
        let mut b = QuboBuilder::new(4);
        b.exactly_k(&[0, 1, 2, 3], 2, 5.0);
        let q = b.build();
        for x in assignments(4) {
            let ones = x.iter().filter(|&&v| v).count() as f64;
            let expect = 5.0 * (ones - 2.0) * (ones - 2.0);
            assert!((q.energy(&x) - expect).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn implication_penalty_structure() {
        let mut b = QuboBuilder::new(2);
        b.implies(0, 1, 7.0);
        let q = b.build();
        assert_eq!(q.energy(&[false, false]), 0.0);
        assert_eq!(q.energy(&[false, true]), 0.0);
        assert_eq!(q.energy(&[true, true]), 0.0);
        assert_eq!(q.energy(&[true, false]), 7.0);
    }

    #[test]
    fn not_both_only_penalizes_joint_assignment() {
        let mut b = QuboBuilder::new(2);
        b.not_both(0, 1, 3.0);
        let q = b.build();
        assert_eq!(q.energy(&[true, true]), 3.0);
        assert_eq!(q.energy(&[true, false]), 0.0);
    }

    #[test]
    fn weighted_equality_is_squared_residual() {
        let mut b = QuboBuilder::new(3);
        b.weighted_equality(&[0, 1, 2], &[1.0, 2.0, 3.0], 3.0, 2.0);
        let q = b.build();
        for x in assignments(3) {
            let total: f64 = x
                .iter()
                .zip(&[1.0, 2.0, 3.0])
                .map(|(&b, w)| if b { *w } else { 0.0 })
                .sum();
            let expect = 2.0 * (total - 3.0) * (total - 3.0);
            assert!((q.energy(&x) - expect).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn objective_and_penalty_compose() {
        // Minimize -x0 - 2x1 subject to one-hot(x0, x1).
        let mut b = QuboBuilder::new(2);
        b.linear(0, -1.0).linear(1, -2.0).one_hot(&[0, 1], 10.0);
        let q = b.build();
        let best = assignments(2)
            .min_by(|a, b| q.energy(a).partial_cmp(&q.energy(b)).unwrap())
            .unwrap();
        assert_eq!(best, vec![false, true]);
    }

    #[test]
    fn slack_weight_subset_sums_cover_zero_to_k() {
        for k in 1..=17usize {
            let w = at_most_k_slack_weights(k);
            let mut reachable = vec![false; k + 1];
            for mask in 0..(1usize << w.len()) {
                let total: f64 = (0..w.len())
                    .filter(|&j| mask & (1 << j) != 0)
                    .map(|j| w[j])
                    .sum();
                let t = total.round() as usize;
                assert!((total - t as f64).abs() < 1e-12);
                assert!(t <= k, "k={k}: subset sum {t} exceeds k");
                reachable[t] = true;
            }
            assert!(reachable.iter().all(|&r| r), "k={k}: gap in coverage");
        }
    }

    #[test]
    fn slack_assignment_encodes_every_value_exactly() {
        for k in 1..=17usize {
            let w = at_most_k_slack_weights(k);
            for v in 0..=k {
                let bits = slack_assignment(&w, v as f64);
                let total: f64 = bits
                    .iter()
                    .zip(&w)
                    .filter(|(&b, _)| b)
                    .map(|(_, &wj)| wj)
                    .sum();
                assert!((total - v as f64).abs() < 1e-12, "k={k} v={v}");
            }
        }
    }

    #[test]
    fn at_most_k_zero_energy_iff_count_within_bound() {
        // 4 decision vars, k = 2 → 2 slack vars; total 6 variables. The
        // ground set must be exactly {assignments with ≤ 2 ones and slack
        // absorbing the residual}.
        let k = 2;
        let sw = at_most_k_slack_weights(k);
        let mut b = QuboBuilder::new(4 + sw.len());
        b.at_most_k(&[0, 1, 2, 3], &[4, 5], k, 9.0);
        let (q, cons) = b.build_parts();
        for x in assignments(4 + sw.len()) {
            let ones = x[..4].iter().filter(|&&v| v).count();
            let e = q.energy(&x);
            if ones > k {
                assert!(e >= 9.0 - 1e-9, "{x:?} energy {e}");
                assert_eq!(cons.n_violated(&x), 1, "{x:?}");
            } else {
                assert!(cons.all_satisfied(&x), "{x:?}");
                // With the right slack setting the penalty vanishes.
                let slack = slack_assignment(&sw, (k - ones) as f64);
                let mut y = x.clone();
                y[4..].copy_from_slice(&slack);
                assert!(q.energy(&y).abs() < 1e-9, "{y:?}");
            }
        }
    }

    #[test]
    fn build_parts_reports_violations_per_group() {
        let mut b = QuboBuilder::new(5);
        b.one_hot(&[0, 1], 5.0);
        b.exactly_k(&[2, 3, 4], 2, 5.0);
        let (_, cons) = b.build_parts();
        assert_eq!(cons.len(), 2);
        // Group 0 satisfied, group 1 short by one.
        let bits = [true, false, true, false, false];
        let v = cons.violations(&bits);
        assert_eq!(v, vec![(1, 1.0)]);
        assert!(!cons.all_satisfied(&bits));
        // Both satisfied.
        let good = [false, true, true, true, false];
        assert!(cons.all_satisfied(&good));
        assert_eq!(cons.n_violated(&good), 0);
    }

    #[test]
    fn weighted_equality_violation_uses_weight_units() {
        let mut b = QuboBuilder::new(2);
        b.weighted_equality(&[0, 1], &[3.0, 4.0], 3.0, 1.0);
        let (_, cons) = b.build_parts();
        assert!(cons.all_satisfied(&[true, false]));
        let v = cons.violations(&[true, true]);
        assert_eq!(v.len(), 1);
        assert!((v[0].1 - 4.0).abs() < 1e-9);
    }
}
