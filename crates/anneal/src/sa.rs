//! Classical simulated annealing for Ising models.
//!
//! Single-spin-flip Metropolis sweeps under a geometric temperature
//! schedule — the thermal baseline the quantum annealer (and its
//! path-integral emulation in [`crate::sqa`]) is compared against.
//!
//! Sweeps run on the incremental local-field engine
//! ([`crate::field::IsingFields`]): each proposal reads its cached field
//! in O(1), and only accepted flips pay O(degree) to repair neighbor
//! fields.

use crate::budget::{Budget, BudgetMeter};
use crate::field::IsingFields;
use crate::ising::Ising;
use qmldb_math::{par, Rng64};

/// Annealing schedule and effort parameters.
#[derive(Clone, Copy, Debug)]
pub struct SaParams {
    /// Starting temperature as a multiple of the model's energy scale.
    pub t_start_factor: f64,
    /// Final temperature as a multiple of the energy scale.
    pub t_end_factor: f64,
    /// Number of full sweeps.
    pub sweeps: usize,
    /// Independent restarts (best result kept).
    pub restarts: usize,
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams {
            t_start_factor: 2.0,
            t_end_factor: 0.01,
            sweeps: 500,
            restarts: 4,
        }
    }
}

/// Result of an annealing run.
#[derive(Clone, Debug)]
pub struct AnnealResult {
    /// Best spin configuration found.
    pub spins: Vec<i8>,
    /// Its energy.
    pub energy: f64,
    /// Best energy after each sweep of the best restart (for convergence
    /// plots).
    pub trace: Vec<f64>,
    /// Total spin-flip proposals made across all restarts.
    pub proposals: u64,
    /// True when a [`Budget`] bound (work count, deadline, or
    /// cancellation) cut the run short of its full schedule. The result
    /// is still the best state seen — the anytime contract.
    pub exhausted: bool,
}

/// One restart's outcome, merged across restarts by the public entry
/// points. Shared by the annealers in this crate.
pub(crate) struct RestartOutcome {
    pub spins: Vec<i8>,
    pub energy: f64,
    pub trace: Vec<f64>,
    pub proposals: u64,
    pub exhausted: bool,
}

/// Merges independent restart outcomes in restart order (first strict
/// improvement wins, matching the serial loop's semantics).
pub(crate) fn merge_restarts(runs: Vec<RestartOutcome>) -> AnnealResult {
    let mut best_spins = Vec::new();
    let mut best_energy = f64::INFINITY;
    let mut best_trace = Vec::new();
    let mut proposals = 0u64;
    let mut exhausted = false;
    for run in runs {
        proposals += run.proposals;
        exhausted |= run.exhausted;
        if run.energy < best_energy {
            best_energy = run.energy;
            best_spins = run.spins;
            best_trace = run.trace;
        }
    }
    AnnealResult {
        spins: best_spins,
        energy: best_energy,
        trace: best_trace,
        proposals,
        exhausted,
    }
}

/// Runs simulated annealing and returns the best configuration seen.
///
/// Restarts are independent: each runs on its own random stream forked
/// from `rng` and they execute in parallel on up to `QMLDB_THREADS`
/// workers, with results bit-identical for any thread count.
pub fn simulated_annealing(model: &Ising, params: &SaParams, rng: &mut Rng64) -> AnnealResult {
    simulated_annealing_with_budget(model, params, &Budget::unlimited(), rng)
}

/// [`simulated_annealing`] under a [`Budget`]. The proposal bound is
/// split exactly across restarts before dispatch and each restart stops
/// mid-sweep the moment its share is spent, so proposal/sweep-bounded
/// runs stay bit-identical for any `QMLDB_THREADS`; deadline/cancel are
/// polled at sweep boundaries (the nondeterministic opt-in). A cut-short
/// run still returns its best state, exactly re-anchored.
pub fn simulated_annealing_with_budget(
    model: &Ising,
    params: &SaParams,
    budget: &Budget,
    rng: &mut Rng64,
) -> AnnealResult {
    assert!(model.n() > 0, "empty model");
    assert!(params.sweeps > 0, "need at least one sweep");
    let scale = model.energy_scale();
    let t_start = params.t_start_factor * scale;
    let t_end = params.t_end_factor * scale;
    let cooling = (t_end / t_start).powf(1.0 / params.sweeps.max(2) as f64);
    let restarts = params.restarts.max(1);

    let runs = par::map_indices_rng(restarts, rng, |idx, rng| {
        let mut meter = BudgetMeter::for_unit(budget, restarts, idx);
        let sweeps = meter.sweep_cap(params.sweeps);
        let mut s: Vec<i8> = (0..model.n())
            .map(|_| if rng.chance(0.5) { 1 } else { -1 })
            .collect();
        let mut fields = IsingFields::new(model, &s);
        let mut energy = model.energy(&s);
        let mut run_best = energy;
        let mut run_best_spins = s.clone();
        let mut trace = Vec::with_capacity(sweeps);
        let mut temp = t_start;
        'anneal: for _ in 0..sweeps {
            if meter.interrupted() {
                break 'anneal;
            }
            for i in 0..model.n() {
                if !meter.try_propose() {
                    break 'anneal;
                }
                let d = fields.delta_flip(&s, i);
                if d <= 0.0 || rng.chance((-d / temp).exp()) {
                    fields.apply_flip(model, &mut s, i);
                    energy += d;
                    if energy < run_best {
                        run_best = energy;
                        run_best_spins = s.clone();
                    }
                }
            }
            trace.push(run_best);
            temp *= cooling;
        }
        // The running energy accumulates one rounding per accepted flip;
        // re-anchor the reported optimum to the exact energy of its spins.
        RestartOutcome {
            energy: model.energy(&run_best_spins),
            spins: run_best_spins,
            trace,
            proposals: meter.used(),
            exhausted: meter.exhausted(),
        }
    });
    merge_restarts(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_spin_glass(n: usize, rng: &mut Rng64) -> Ising {
        let mut couplings = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.chance(0.5) {
                    couplings.push((i, j, rng.uniform_range(-1.0, 1.0)));
                }
            }
        }
        let h: Vec<f64> = (0..n).map(|_| rng.uniform_range(-0.5, 0.5)).collect();
        Ising::new(h, couplings, 0.0)
    }

    #[test]
    fn solves_small_ferromagnet_exactly() {
        let m = Ising::new(
            vec![0.0; 6],
            (0..5).map(|i| (i, i + 1, -1.0)).collect(),
            0.0,
        );
        let mut rng = Rng64::new(901);
        let r = simulated_annealing(&m, &SaParams::default(), &mut rng);
        assert!((r.energy + 5.0).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_glasses() {
        let mut rng = Rng64::new(903);
        for _ in 0..5 {
            let m = random_spin_glass(10, &mut rng);
            let (_, exact) = m.brute_force_ground();
            let r = simulated_annealing(&m, &SaParams::default(), &mut rng);
            assert!(
                (r.energy - exact).abs() < 1e-9,
                "SA {} vs exact {exact}",
                r.energy
            );
        }
    }

    #[test]
    fn trace_is_monotone_nonincreasing() {
        let mut rng = Rng64::new(905);
        let m = random_spin_glass(12, &mut rng);
        let r = simulated_annealing(&m, &SaParams::default(), &mut rng);
        for w in r.trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn reported_energy_matches_reported_spins() {
        let mut rng = Rng64::new(907);
        let m = random_spin_glass(8, &mut rng);
        let r = simulated_annealing(&m, &SaParams::default(), &mut rng);
        assert!((m.energy(&r.spins) - r.energy).abs() < 1e-12);
    }

    #[test]
    fn more_sweeps_do_not_hurt() {
        let mut rng1 = Rng64::new(909);
        let mut rng2 = Rng64::new(909);
        let m = random_spin_glass(14, &mut Rng64::new(910));
        let quick = simulated_annealing(
            &m,
            &SaParams {
                sweeps: 10,
                restarts: 1,
                ..SaParams::default()
            },
            &mut rng1,
        );
        let slow = simulated_annealing(
            &m,
            &SaParams {
                sweeps: 2000,
                restarts: 1,
                ..SaParams::default()
            },
            &mut rng2,
        );
        assert!(slow.energy <= quick.energy + 1e-12);
    }

    #[test]
    fn proposal_count_is_exact() {
        let m = Ising::new(vec![0.0; 5], vec![(0, 1, -1.0)], 0.0);
        let mut rng = Rng64::new(911);
        let r = simulated_annealing(
            &m,
            &SaParams {
                sweeps: 100,
                restarts: 3,
                ..SaParams::default()
            },
            &mut rng,
        );
        assert_eq!(r.proposals, 5 * 100 * 3);
        assert!(!r.exhausted);
    }

    #[test]
    fn proposal_budget_is_consumed_exactly() {
        let m = random_spin_glass(10, &mut Rng64::new(913));
        let p = SaParams {
            sweeps: 200,
            restarts: 3,
            ..SaParams::default()
        };
        // 100 proposals across 3 restarts: shares 34/33/33, all consumed.
        let r =
            simulated_annealing_with_budget(&m, &p, &Budget::proposals(100), &mut Rng64::new(915));
        assert_eq!(r.proposals, 100);
        assert!(r.exhausted);
        assert!((m.energy(&r.spins) - r.energy).abs() < 1e-12);
    }

    #[test]
    fn generous_budget_is_bit_identical_to_unlimited() {
        let m = random_spin_glass(12, &mut Rng64::new(917));
        let p = SaParams {
            sweeps: 50,
            restarts: 2,
            ..SaParams::default()
        };
        let plain = simulated_annealing(&m, &p, &mut Rng64::new(919));
        let roomy = simulated_annealing_with_budget(
            &m,
            &p,
            &Budget::proposals(u64::MAX).with_sweeps(u64::MAX),
            &mut Rng64::new(919),
        );
        assert_eq!(plain.energy.to_bits(), roomy.energy.to_bits());
        assert_eq!(plain.spins, roomy.spins);
        assert_eq!(plain.proposals, roomy.proposals);
        assert!(!roomy.exhausted);
    }

    #[test]
    fn sweep_budget_caps_each_restart() {
        let m = random_spin_glass(8, &mut Rng64::new(921));
        let p = SaParams {
            sweeps: 100,
            restarts: 2,
            ..SaParams::default()
        };
        let r = simulated_annealing_with_budget(&m, &p, &Budget::sweeps(10), &mut Rng64::new(923));
        assert_eq!(r.proposals, 8 * 10 * 2);
        assert_eq!(r.trace.len(), 10);
        assert!(r.exhausted);
    }

    #[test]
    fn cancelled_run_still_returns_an_anchored_state() {
        use crate::budget::CancelToken;
        let m = random_spin_glass(8, &mut Rng64::new(925));
        let token = CancelToken::new();
        token.cancel();
        let r = simulated_annealing_with_budget(
            &m,
            &SaParams::default(),
            &Budget::unlimited().with_cancel(token),
            &mut Rng64::new(927),
        );
        // Interrupted before the first sweep: the initial random state is
        // the best seen, exactly anchored.
        assert_eq!(r.proposals, 0);
        assert!(r.exhausted);
        assert_eq!(r.spins.len(), 8);
        assert!((m.energy(&r.spins) - r.energy).abs() < 1e-12);
    }
}
