//! Domain-decomposition annealing: graph-partitioned shard solvers with
//! boundary-term exchange.
//!
//! The field-cache engine made a single SA sweep O(n + flips·deg), so at
//! 10⁵–10⁶ variables the ceiling is memory, not compute: one sweep
//! streams a multi-megabyte working set (fields, spins, CSR rows) through
//! DRAM, and every best-so-far snapshot copies the full spin vector. This
//! module restores locality by decomposition:
//!
//! 1. [`partition_graph`] — a deterministic multilevel partitioner over
//!    [`CsrAdjacency`]: greedy heavy-edge-matching coarsening, seeded
//!    region-growing initial assignment at the coarsest level, and
//!    KL/FM-style boundary refinement projected back level by level,
//!    minimizing the cut weight `Σ|J|` under a hard per-shard size cap.
//! 2. [`sharded_anneal`] — outer rounds of shard-local simulated
//!    annealing. Within a round every spin *outside* a shard is frozen;
//!    its cut-coupling contribution is folded into the shard's effective
//!    local fields (`h'ᵢ = hᵢ + Σ_{j∉shard} Jᵢⱼ·sⱼ`), so each shard is a
//!    self-contained L2-resident subproblem. Shards anneal in parallel
//!    via [`par::map_rng`] (per-shard streams forked serially → results
//!    bit-identical for any `QMLDB_THREADS`), commit serially in shard
//!    order, pass a deterministic greedy polish over the boundary
//!    vertices, and re-anchor to an exact global energy recompute.
//! 3. Embedding-aware sizing — [`embedding_shard_budget`] caps shard
//!    sizes at what the configured [`DeviceConfig`] Chimera fabric can
//!    minor-embed regardless of shard structure (the `C(m)` clique bound
//!    of `4m` logical variables), so every shard is a deployable
//!    per-device subproblem.
//!
//! The exact decomposition identity the property tests pin:
//! `E(s) = Σ_p E_internal(p) + Σ_cut Jᵢⱼsᵢsⱼ + offset`.

use crate::budget::{Budget, BudgetMeter};
use crate::csr::CsrAdjacency;
use crate::device::DeviceConfig;
use crate::field::IsingFields;
use crate::ising::{spins_to_bits, Ising};
use crate::sparse::SparseQubo;
use qmldb_math::{par, Rng64};

/// Sentinel for "not yet assigned / not yet matched".
const NONE: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

/// A disjoint split of a model's variables into shards, plus the
/// cross-shard couplings the shards exchange.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `assignment[v]` = shard of variable `v`.
    assignment: Vec<u32>,
    /// Shard → its variables, ascending. Every variable appears in
    /// exactly one shard.
    shards: Vec<Vec<u32>>,
    /// Couplings whose endpoints live in different shards, `(i, j, w)`
    /// with `i < j` and `w` the original (signed) weight.
    cut_edges: Vec<(u32, u32, f64)>,
    /// Total cut magnitude `Σ|w|` — the partitioner's objective.
    cut_weight: f64,
}

impl Partition {
    /// Number of shards (all non-empty).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard → sorted variable lists.
    pub fn shards(&self) -> &[Vec<u32>] {
        &self.shards
    }

    /// Variable → shard map.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Cross-shard couplings `(i, j, w)` with `i < j`.
    pub fn cut_edges(&self) -> &[(u32, u32, f64)] {
        &self.cut_edges
    }

    /// Total cut magnitude `Σ|w|`.
    pub fn cut_weight(&self) -> f64 {
        self.cut_weight
    }

    /// Largest shard size.
    pub fn max_shard_size(&self) -> usize {
        self.shards.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Sorted global indices of variables incident to a cut edge.
    pub fn boundary_vars(&self) -> Vec<u32> {
        let mut b: Vec<u32> = self
            .cut_edges
            .iter()
            .flat_map(|&(a, b, _)| [a, b])
            .collect();
        b.sort_unstable();
        b.dedup();
        b
    }

    /// Per-shard internal energies (fields of the shard's spins plus
    /// couplings with both endpoints inside) and the cut term
    /// `Σ_cut Jᵢⱼsᵢsⱼ`. The decomposition identity
    /// `model.energy(s) = Σ internal + cut + model.offset()` holds
    /// exactly — the property tests pin it to 1e-9.
    pub fn shard_energies(&self, model: &Ising, s: &[i8]) -> (Vec<f64>, f64) {
        assert_eq!(s.len(), self.assignment.len(), "spin count");
        let mut internal = vec![0.0f64; self.shards.len()];
        for (i, &hi) in model.fields().iter().enumerate() {
            internal[self.assignment[i] as usize] += hi * s[i] as f64;
        }
        let mut cut = 0.0;
        for &(a, b, j) in model.couplings() {
            let term = j * s[a] as f64 * s[b] as f64;
            if self.assignment[a] == self.assignment[b] {
                internal[self.assignment[a] as usize] += term;
            } else {
                cut += term;
            }
        }
        (internal, cut)
    }
}

/// One level of the multilevel hierarchy: the coarse graph (weights are
/// aggregated `|w|`), per-vertex weights in finest-level variables, and
/// the fine→coarse vertex map.
struct CoarseLevel {
    graph: CsrAdjacency,
    vw: Vec<usize>,
    fine_to_coarse: Vec<u32>,
}

/// Heavy-edge matching: visit vertices in `order`; match each unmatched
/// vertex with its unmatched neighbor of largest `|w|` (ties → smallest
/// index) unless the merged vertex would exceed `max_vw`. Returns the
/// coarse level, or `None` when matching stalls (< 5% shrink).
fn coarsen(
    graph: &CsrAdjacency,
    vw: &[usize],
    max_vw: usize,
    order: &[usize],
) -> Option<CoarseLevel> {
    let n = graph.n();
    let mut mate = vec![NONE; n];
    let mut matched_pairs = 0usize;
    for &v in order {
        if mate[v] != NONE {
            continue;
        }
        let mut best: Option<(f64, usize)> = None;
        for (u, w) in graph.iter_row(v) {
            if mate[u] != NONE || vw[v] + vw[u] > max_vw {
                continue;
            }
            let aw = w.abs();
            match best {
                Some((bw, bu)) if aw < bw || (aw == bw && u >= bu) => {}
                _ => best = Some((aw, u)),
            }
        }
        if let Some((_, u)) = best {
            mate[v] = u as u32;
            mate[u] = v as u32;
            matched_pairs += 1;
        } else {
            mate[v] = v as u32; // singleton
        }
    }
    let coarse_n = n - matched_pairs;
    if coarse_n * 20 > n * 19 {
        return None; // stalled
    }
    // Coarse ids in ascending order of each group's smallest member.
    let mut fine_to_coarse = vec![NONE; n];
    let mut next = 0u32;
    for v in 0..n {
        if fine_to_coarse[v] != NONE {
            continue;
        }
        fine_to_coarse[v] = next;
        let m = mate[v] as usize;
        if m != v {
            fine_to_coarse[m] = next;
        }
        next += 1;
    }
    let mut cvw = vec![0usize; coarse_n];
    for v in 0..n {
        cvw[fine_to_coarse[v] as usize] += vw[v];
    }
    // Aggregate |w| over coarse edge pairs: collect, sort, merge runs.
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    for v in 0..n {
        let cv = fine_to_coarse[v];
        for (u, w) in graph.iter_row(v) {
            if u <= v {
                continue; // each fine edge once
            }
            let cu = fine_to_coarse[u];
            if cv != cu {
                let (a, b) = if cv < cu { (cv, cu) } else { (cu, cv) };
                edges.push((a, b, w.abs()));
            }
        }
    }
    edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
    let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(edges.len());
    for (a, b, w) in edges {
        match merged.last_mut() {
            Some(last) if last.0 == a as usize && last.1 == b as usize => last.2 += w,
            _ => merged.push((a as usize, b as usize, w)),
        }
    }
    Some(CoarseLevel {
        graph: CsrAdjacency::from_edges(coarse_n, &merged),
        vw: cvw,
        fine_to_coarse,
    })
}

/// Seeded region growing at the coarsest level: each shard starts from
/// the unassigned vertex with the strongest total incidence and absorbs
/// the unassigned vertex best-connected to it until the balance target is
/// reached; leftovers go to their best-connected shard with room.
fn initial_partition(graph: &CsrAdjacency, vw: &[usize], k: usize, cap: usize) -> Vec<u32> {
    let n = graph.n();
    let total: usize = vw.iter().sum();
    let target = total.div_ceil(k);
    let strength: Vec<f64> = (0..n)
        .map(|v| graph.iter_row(v).map(|(_, w)| w.abs()).sum())
        .collect();
    let mut asg = vec![NONE; n];
    let mut weight = vec![0usize; k];
    let mut conn = vec![0.0f64; n];
    for shard in 0..k as u32 {
        // Seed: strongest unassigned vertex (ties → smallest index).
        let mut seed: Option<usize> = None;
        for v in 0..n {
            if asg[v] == NONE && seed.is_none_or(|s| strength[v] > strength[s]) {
                seed = Some(v);
            }
        }
        let Some(seed) = seed else { break };
        conn.fill(0.0);
        fn grow(
            v: usize,
            shard: u32,
            vw: &[usize],
            graph: &CsrAdjacency,
            asg: &mut [u32],
            weight: &mut [usize],
            conn: &mut [f64],
        ) {
            asg[v] = shard;
            weight[shard as usize] += vw[v];
            for (u, w) in graph.iter_row(v) {
                if asg[u] == NONE {
                    conn[u] += w.abs();
                }
            }
        }
        grow(seed, shard, vw, graph, &mut asg, &mut weight, &mut conn);
        while weight[shard as usize] < target {
            // Best-connected unassigned vertex that fits under the cap.
            let mut pick: Option<usize> = None;
            for v in 0..n {
                if asg[v] == NONE
                    && conn[v] > 0.0
                    && weight[shard as usize] + vw[v] <= cap
                    && pick.is_none_or(|p| conn[v] > conn[p])
                {
                    pick = Some(v);
                }
            }
            let Some(v) = pick else { break };
            grow(v, shard, vw, graph, &mut asg, &mut weight, &mut conn);
        }
    }
    // Leftovers (isolated vertices, capped-out regions): best-connected
    // shard with room, else the lightest shard with room.
    for v in 0..n {
        if asg[v] != NONE {
            continue;
        }
        let mut shard_conn = vec![0.0f64; k];
        for (u, w) in graph.iter_row(v) {
            if asg[u] != NONE {
                shard_conn[asg[u] as usize] += w.abs();
            }
        }
        let mut pick: Option<usize> = None;
        for p in 0..k {
            if weight[p] + vw[v] > cap {
                continue;
            }
            pick = match pick {
                Some(q)
                    if (shard_conn[p], std::cmp::Reverse(weight[p]))
                        <= (shard_conn[q], std::cmp::Reverse(weight[q])) =>
                {
                    Some(q)
                }
                _ => Some(p),
            };
        }
        let p = pick.expect("cap × shard count admits every vertex");
        asg[v] = p as u32;
        weight[p] += vw[v];
    }
    asg
}

/// FM-style refinement: repeatedly move boundary vertices to the
/// neighboring shard they are most connected to, when the move strictly
/// reduces the cut and respects the cap. Vertices are visited in index
/// order — fully deterministic.
fn refine(
    graph: &CsrAdjacency,
    vw: &[usize],
    asg: &mut [u32],
    k: usize,
    cap: usize,
    passes: usize,
) {
    let n = graph.n();
    let mut weight = vec![0usize; k];
    for v in 0..n {
        weight[asg[v] as usize] += vw[v];
    }
    let mut conn = vec![0.0f64; k];
    let mut touched: Vec<u32> = Vec::new();
    for _ in 0..passes {
        let mut moved = false;
        for v in 0..n {
            let cur = asg[v] as usize;
            for (u, w) in graph.iter_row(v) {
                let p = asg[u];
                if conn[p as usize] == 0.0 {
                    touched.push(p);
                }
                conn[p as usize] += w.abs();
            }
            let mut best = cur;
            for &p in &touched {
                let p = p as usize;
                if p != cur
                    && weight[p] + vw[v] <= cap
                    && (conn[p] > conn[best] || (conn[p] == conn[best] && p < best && best != cur))
                {
                    // Strictly positive gain only; ties stay put.
                    if conn[p] > conn[cur] {
                        best = p;
                    }
                }
            }
            if best != cur {
                weight[cur] -= vw[v];
                weight[best] += vw[v];
                asg[v] = best as u32;
                moved = true;
            }
            for &p in &touched {
                conn[p as usize] = 0.0;
            }
            touched.clear();
        }
        if !moved {
            break;
        }
    }
}

/// Partitions the adjacency into shards of at most `max_shard_vars`
/// variables, minimizing the cut weight `Σ|w|` with a deterministic
/// multilevel scheme (greedy heavy-edge coarsening → seeded region
/// growing → FM-style refinement per level). Randomness only orders the
/// coarsening visits; two calls with equal-state `rng` produce identical
/// partitions, independent of `QMLDB_THREADS`.
pub fn partition_graph(
    adj: &CsrAdjacency,
    max_shard_vars: usize,
    refine_passes: usize,
    rng: &mut Rng64,
) -> Partition {
    let n = adj.n();
    assert!(n > 0, "empty graph");
    assert!(max_shard_vars > 0, "zero shard size");
    let cap = max_shard_vars;
    // Target 3/4 of the cap so growth, leftovers and refinement always
    // have room below the hard limit (see the fit argument in
    // `initial_partition`: vertex weights never exceed cap/4, so some
    // shard always has room).
    let target = (cap * 3 / 4).max(1);
    let k = n.div_ceil(target);
    if k == 1 {
        return finalize(adj, vec![0u32; n]);
    }

    // Coarsen until the graph is small, keeping vertices mergeable only
    // while they stay under a quarter of the cap.
    let max_vw = (cap / 4).max(1);
    let stop_at = (4 * k).max(256);
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut vw = vec![1usize; n];
    loop {
        let (graph, cvw) = match levels.last() {
            Some(l) => (&l.graph, &l.vw),
            None => (adj, &vw),
        };
        if graph.n() <= stop_at {
            break;
        }
        let mut order: Vec<usize> = (0..graph.n()).collect();
        rng.shuffle(&mut order);
        match coarsen(graph, cvw, max_vw, &order) {
            Some(level) => levels.push(level),
            None => break,
        }
    }
    if let Some(l) = levels.last() {
        vw = l.vw.clone();
    }

    // Initial partition at the coarsest level, then refine and project
    // back up the hierarchy.
    let coarsest = levels.last().map(|l| &l.graph).unwrap_or(adj);
    let mut asg = initial_partition(coarsest, &vw, k, cap);
    refine(coarsest, &vw, &mut asg, k, cap, refine_passes);
    for li in (0..levels.len()).rev() {
        let (fine_graph, fine_vw): (&CsrAdjacency, Vec<usize>) = if li == 0 {
            (adj, vec![1usize; n])
        } else {
            (&levels[li - 1].graph, levels[li - 1].vw.clone())
        };
        let map = &levels[li].fine_to_coarse;
        let mut fine_asg: Vec<u32> = (0..fine_graph.n()).map(|v| asg[map[v] as usize]).collect();
        refine(fine_graph, &fine_vw, &mut fine_asg, k, cap, refine_passes);
        asg = fine_asg;
    }
    finalize(adj, asg)
}

/// Drops empty shards, renumbers, and extracts the cut.
fn finalize(adj: &CsrAdjacency, asg: Vec<u32>) -> Partition {
    let n = adj.n();
    let k = asg.iter().map(|&p| p as usize + 1).max().unwrap_or(1);
    let mut sizes = vec![0usize; k];
    for &p in &asg {
        sizes[p as usize] += 1;
    }
    let mut renumber = vec![NONE; k];
    let mut next = 0u32;
    for (p, &sz) in sizes.iter().enumerate() {
        if sz > 0 {
            renumber[p] = next;
            next += 1;
        }
    }
    let assignment: Vec<u32> = asg.iter().map(|&p| renumber[p as usize]).collect();
    let mut shards: Vec<Vec<u32>> = vec![Vec::new(); next as usize];
    for (v, &p) in assignment.iter().enumerate() {
        shards[p as usize].push(v as u32);
    }
    let mut cut_edges = Vec::new();
    let mut cut_weight = 0.0;
    for v in 0..n {
        for (u, w) in adj.iter_row(v) {
            if u > v && assignment[v] != assignment[u] {
                cut_edges.push((v as u32, u as u32, w));
                cut_weight += w.abs();
            }
        }
    }
    Partition {
        assignment,
        shards,
        cut_edges,
        cut_weight,
    }
}

// ---------------------------------------------------------------------------
// Embedding-aware sizing
// ---------------------------------------------------------------------------

/// Largest shard guaranteed minor-embeddable on the device's Chimera
/// fabric *regardless of shard structure*: the `C(m)` clique bound of
/// `4m` logical variables ([`crate::embed::clique_embedding`] rejects
/// anything larger). Sparse shards may embed beyond this, but the clique
/// bound is the only size every possible shard respects.
pub fn embedding_shard_budget(device: &DeviceConfig) -> usize {
    4 * device.fabric_m
}

// ---------------------------------------------------------------------------
// Sharded solver
// ---------------------------------------------------------------------------

/// Parameters of the partitioned annealer.
#[derive(Clone, Copy, Debug)]
pub struct ShardedParams {
    /// Hard cap on shard size (variables).
    pub max_shard_vars: usize,
    /// Outer exchange rounds (boundary contributions refresh between
    /// rounds; each ends with an exact global energy re-anchor).
    pub rounds: usize,
    /// SA sweeps each shard runs per round. The temperature schedule is
    /// one global geometric ramp over `rounds × sweeps_per_round` sweeps,
    /// sliced per round — not re-heated.
    pub sweeps_per_round: usize,
    /// Starting temperature as a multiple of the model's energy scale.
    pub t_start_factor: f64,
    /// Final temperature as a multiple of the energy scale.
    pub t_end_factor: f64,
    /// Partitioner refinement passes per level.
    pub refine_passes: usize,
    /// Serial greedy descent passes over boundary vertices after each
    /// round's commit (repairs cross-shard conflicts; proposals counted).
    pub polish_passes: usize,
}

impl Default for ShardedParams {
    fn default() -> Self {
        ShardedParams {
            max_shard_vars: 2048,
            rounds: 24,
            sweeps_per_round: 4,
            t_start_factor: 2.0,
            t_end_factor: 0.01,
            refine_passes: 4,
            polish_passes: 2,
        }
    }
}

impl ShardedParams {
    /// Sizes shards to the device's embedding budget
    /// ([`embedding_shard_budget`]), so every shard is deployable on the
    /// modeled hardware.
    pub fn for_device(device: &DeviceConfig) -> Self {
        ShardedParams {
            max_shard_vars: embedding_shard_budget(device),
            ..ShardedParams::default()
        }
    }
}

/// Result of a partitioned annealing run.
#[derive(Clone, Debug)]
pub struct ShardedResult {
    /// Best spin configuration seen (exact-energy re-anchored).
    pub spins: Vec<i8>,
    /// Its exact energy (`model.energy(&spins)`).
    pub energy: f64,
    /// Total spin-flip proposals (shard sweeps + boundary polish) — the
    /// budget the equal-flip-budget comparison equalizes on.
    pub proposals: u64,
    /// Number of shards.
    pub n_shards: usize,
    /// Cut weight `Σ|J|` of the partition.
    pub cut_weight: f64,
    /// Best exact energy after each round.
    pub trace: Vec<f64>,
    /// True when a [`Budget`] bound cut the run short of its full round
    /// schedule. The result is still the best re-anchored state seen.
    pub exhausted: bool,
}

/// One shard's local subproblem, renumbered to `0..len`.
struct Shard {
    /// Local → global variable ids (ascending).
    globals: Vec<u32>,
    /// Internal linear fields.
    h: Vec<f64>,
    /// Internal couplings in local ids.
    adj: CsrAdjacency,
    /// Cut couplings incident to this shard: `(local i, global j, w)`.
    ext: Vec<(u32, u32, f64)>,
}

fn build_shards(model: &Ising, partition: &Partition) -> Vec<Shard> {
    let n = model.n();
    let asg = partition.assignment();
    let mut local_of = vec![0u32; n];
    for shard in partition.shards() {
        for (pos, &g) in shard.iter().enumerate() {
            local_of[g as usize] = pos as u32;
        }
    }
    let adj = model.adjacency();
    partition
        .shards()
        .iter()
        .enumerate()
        .map(|(p, globals)| {
            let mut edges = Vec::new();
            let mut ext = Vec::new();
            for (pos, &g) in globals.iter().enumerate() {
                for (u, w) in adj.iter_row(g as usize) {
                    if asg[u] as usize == p {
                        if u > g as usize {
                            edges.push((pos, local_of[u] as usize, w));
                        }
                    } else {
                        ext.push((pos as u32, u as u32, w));
                    }
                }
            }
            Shard {
                h: globals
                    .iter()
                    .map(|&g| model.fields()[g as usize])
                    .collect(),
                adj: CsrAdjacency::from_edges(globals.len(), &edges),
                ext,
                globals: globals.clone(),
            }
        })
        .collect()
}

/// One round of shard-local SA: fold the frozen cross-shard spins into
/// effective fields, then run `sweeps` field-cache Metropolis sweeps on
/// the shard-resident arrays, ending with one greedy plateau pass.
/// Returns the walk's *end* state (not a best-so-far snapshot: the
/// random walk must carry across rounds or the schedule degenerates to
/// greedy descent — the outer loop's exact re-anchor does the
/// best-tracking) and the proposals consumed.
fn run_shard(
    shard: &Shard,
    s_global: &[i8],
    t0: f64,
    cooling: f64,
    sweeps: usize,
    quench: bool,
    rng: &mut Rng64,
) -> (Vec<i8>, u64) {
    let m = shard.globals.len();
    // Effective fields: internal h plus the frozen boundary exchange.
    let mut eff_h = shard.h.clone();
    for &(li, gj, w) in &shard.ext {
        eff_h[li as usize] += w * s_global[gj as usize] as f64;
    }
    // The shard continues from the committed global state.
    let mut ls: Vec<i8> = shard
        .globals
        .iter()
        .map(|&g| s_global[g as usize])
        .collect();
    let mut f: Vec<f64> = (0..m)
        .map(|i| {
            let mut fi = eff_h[i];
            for (j, w) in shard.adj.iter_row(i) {
                fi += w * ls[j] as f64;
            }
            fi
        })
        .collect();
    let mut proposals = 0u64;
    let mut temp = t0;
    for _ in 0..sweeps {
        for i in 0..m {
            proposals += 1;
            let d = -2.0 * ls[i] as f64 * f[i];
            if d <= 0.0 || rng.chance((-d / temp).exp()) {
                ls[i] = -ls[i];
                let step = 2.0 * ls[i] as f64;
                let (targets, weights) = shard.adj.row(i);
                for (&j, &w) in targets.iter().zip(weights) {
                    f[j as usize] += step * w;
                }
            }
        }
        temp *= cooling;
    }
    // In the cold tail only: one deterministic greedy pass that also
    // accepts plateau (zero-delta) moves in ascending order. Strict
    // improvements are taken, and flat moves march degenerate domain
    // walls toward the shard edge, where the next round's neighbor
    // shard can annihilate them (chains of frozen-boundary ties
    // otherwise random-walk forever). During the hot phase the pass
    // stays off — quenching every round would collapse the Metropolis
    // walk before it equilibrates.
    if quench {
        for i in 0..m {
            proposals += 1;
            if -2.0 * ls[i] as f64 * f[i] <= 0.0 {
                ls[i] = -ls[i];
                let step = 2.0 * ls[i] as f64;
                let (targets, weights) = shard.adj.row(i);
                for (&j, &w) in targets.iter().zip(weights) {
                    f[j as usize] += step * w;
                }
            }
        }
    }
    (ls, proposals)
}

/// Runs partitioned annealing on an Ising model.
///
/// Per outer round: every shard anneals its own variables in parallel
/// against a frozen snapshot of the rest (boundary contributions folded
/// into effective fields), commits serially in shard order, a greedy
/// serial polish sweeps the boundary vertices, and the best state is
/// re-anchored to an exact `model.energy` recompute. RNG streams fork
/// serially (partitioner first, then one per shard per round), so the
/// result is bit-identical for any `QMLDB_THREADS`.
pub fn sharded_anneal(model: &Ising, params: &ShardedParams, rng: &mut Rng64) -> ShardedResult {
    sharded_anneal_with_budget(model, params, &Budget::unlimited(), rng)
}

/// [`sharded_anneal`] under a [`Budget`]. The bound is enforced at round
/// boundaries: a round starts only if its deterministic shard-sweep cost
/// (`n × sweeps_per_round`, plus `n` in the quench regime) still fits
/// the proposal bound, and deadline/cancel are polled there too. Block
/// flips and boundary polish are data-dependent follow-up work within a
/// committed round — they are recorded against the count but never split
/// a round, so proposal-bounded runs stay bit-identical for any thread
/// count (at the cost of a small, deterministic overshoot). The sweep
/// cap bounds `rounds × sweeps_per_round` in whole rounds. The
/// temperature schedule is untouched — budgets cut the schedule short,
/// they don't reshape it.
pub fn sharded_anneal_with_budget(
    model: &Ising,
    params: &ShardedParams,
    budget: &Budget,
    rng: &mut Rng64,
) -> ShardedResult {
    let n = model.n();
    assert!(n > 0, "empty model");
    assert!(
        params.rounds > 0 && params.sweeps_per_round > 0,
        "need at least one round and sweep"
    );
    let partition = partition_graph(
        model.adjacency(),
        params.max_shard_vars,
        params.refine_passes,
        rng,
    );
    let shards = build_shards(model, &partition);
    let boundary = partition.boundary_vars();
    // Chromatic schedule: greedily color the shard quotient graph so
    // shards in one class share no cut edge, then sweep the classes
    // sequentially within a round (same-class shards still run in
    // parallel). Each class anneals against the classes already
    // committed this round — Gauss–Seidel exchange, which converges
    // where a single synchronous commit per round oscillates (the
    // blinker cycles of parallel best-response on a ferromagnet).
    let color_groups: Vec<Vec<u32>> = {
        let k = partition.n_shards();
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); k];
        for &(a, b, _) in partition.cut_edges() {
            let (pa, pb) = (
                partition.assignment()[a as usize],
                partition.assignment()[b as usize],
            );
            neighbors[pa as usize].push(pb);
            neighbors[pb as usize].push(pa);
        }
        let mut color = vec![usize::MAX; k];
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for p in 0..k {
            let mut used = vec![false; groups.len()];
            for &q in &neighbors[p] {
                if color[q as usize] != usize::MAX {
                    used[color[q as usize]] = true;
                }
            }
            let c = used.iter().position(|&u| !u).unwrap_or_else(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            color[p] = c;
            groups[c].push(p as u32);
        }
        groups
    };

    let scale = model.energy_scale();
    let t_start = params.t_start_factor * scale;
    let t_end = params.t_end_factor * scale;
    let total_sweeps = params.rounds * params.sweeps_per_round;
    let cooling = (t_end / t_start).powf(1.0 / total_sweeps.max(2) as f64);
    let mut meter = BudgetMeter::new(budget);
    // The sweep cap cuts in whole rounds: a partial round never runs.
    let rounds = meter.sweep_cap(total_sweeps) / params.sweeps_per_round;

    let mut s: Vec<i8> = (0..n)
        .map(|_| if rng.chance(0.5) { 1 } else { -1 })
        .collect();
    let mut best = s.clone();
    let mut best_e = model.energy(&s);
    let mut trace = Vec::with_capacity(rounds);
    let mut round_t = t_start;

    for _ in 0..rounds {
        let t0 = round_t;
        // The deterministic greedy machinery (plateau passes, shard
        // block flips, boundary polish) only engages once the schedule
        // has cooled into the quench regime — running it every round
        // would collapse the Metropolis walk before it equilibrates.
        let quench = t0 <= 0.05 * scale;
        // Every variable lives in exactly one shard, so the round's
        // shard-sweep cost is exact before dispatch; refuse the round
        // whole if it no longer fits, and poll deadline/cancel here.
        let round_cost = (n * params.sweeps_per_round + if quench { n } else { 0 }) as u64;
        if meter.interrupted() || !meter.try_consume(round_cost) {
            break;
        }
        for group in &color_groups {
            let frozen = &s;
            let runs = par::map_rng(group, rng, |_, &p, stream| {
                run_shard(
                    &shards[p as usize],
                    frozen,
                    t0,
                    cooling,
                    params.sweeps_per_round,
                    quench,
                    stream,
                )
            });
            // Serial commit in shard order within the class. The shard
            // proposals were pre-charged as this round's cost.
            for (&p, (ls, _)) in group.iter().zip(runs) {
                for (pos, &g) in shards[p as usize].globals.iter().enumerate() {
                    s[g as usize] = ls[pos];
                }
            }
        }
        // Block moves: flipping an entire shard leaves its internal
        // couplings invariant, so the exact global delta needs only the
        // shard's fields and cut edges (`ΔE = -2·(Σhᵢsᵢ + Σ_cut Jss)`).
        // Greedy sequential passes annihilate whole misaligned shards —
        // the decomposition failure mode single-spin polish cannot fix.
        let mut flipped = quench;
        while flipped {
            flipped = false;
            for shard in &shards {
                meter.record(1);
                let mut contrib = 0.0;
                for (pos, &g) in shard.globals.iter().enumerate() {
                    contrib += shard.h[pos] * s[g as usize] as f64;
                }
                for &(li, gj, w) in &shard.ext {
                    let gi = shard.globals[li as usize] as usize;
                    contrib += w * s[gi] as f64 * s[gj as usize] as f64;
                }
                if contrib > 0.0 {
                    for &g in &shard.globals {
                        s[g as usize] = -s[g as usize];
                    }
                    flipped = true;
                }
            }
        }
        // Boundary polish: deterministic greedy descent over the cut
        // vertices, repairing conflicts the independent commits created.
        if quench && params.polish_passes > 0 && !boundary.is_empty() {
            let mut fields = IsingFields::new(model, &s);
            for _ in 0..params.polish_passes {
                let mut improved = false;
                for &v in &boundary {
                    meter.record(1);
                    if fields.delta_flip(&s, v as usize) < 0.0 {
                        fields.apply_flip(model, &mut s, v as usize);
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        // Exact re-anchor: the round's outcome is scored by a full
        // energy recompute, never by accumulated deltas.
        let e = model.energy(&s);
        if e < best_e {
            best_e = e;
            best = s.clone();
        }
        trace.push(best_e);
        round_t *= cooling.powi(params.sweeps_per_round as i32);
    }

    ShardedResult {
        spins: best,
        energy: best_e,
        proposals: meter.used(),
        n_shards: partition.n_shards(),
        cut_weight: partition.cut_weight(),
        trace,
        exhausted: meter.exhausted(),
    }
}

/// Runs partitioned annealing on a sparse QUBO (via its exact Ising
/// form) and returns the best assignment alongside the run record. The
/// record's `energy` equals `qubo.energy(&bits)` up to f64 rounding of
/// the change of variables.
pub fn sharded_anneal_qubo(
    qubo: &SparseQubo,
    params: &ShardedParams,
    rng: &mut Rng64,
) -> (Vec<bool>, ShardedResult) {
    let ising = qubo.to_ising();
    let r = sharded_anneal(&ising, params, rng);
    let bits = spins_to_bits(&r.spins);
    (bits, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{clique_embedding, Chimera};

    fn banded_glass(n: usize, band: usize, rng: &mut Rng64) -> Ising {
        let mut couplings = Vec::new();
        for i in 0..n {
            for d in 1..=band {
                if i + d < n && rng.chance(0.6) {
                    couplings.push((i, i + d, rng.uniform_range(-1.0, 1.0)));
                }
            }
        }
        let h: Vec<f64> = (0..n).map(|_| rng.uniform_range(-0.5, 0.5)).collect();
        Ising::new(h, couplings, rng.uniform_range(-1.0, 1.0))
    }

    #[test]
    fn every_variable_lands_in_exactly_one_shard() {
        let mut rng = Rng64::new(71);
        let m = banded_glass(300, 3, &mut rng);
        let p = partition_graph(m.adjacency(), 64, 4, &mut rng);
        let mut seen = vec![0usize; 300];
        for shard in p.shards() {
            for &v in shard {
                seen[v as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        for (v, &shard) in p.assignment().iter().enumerate() {
            assert!(p.shards()[shard as usize].contains(&(v as u32)));
        }
        assert!(p.max_shard_size() <= 64);
        assert!(p.n_shards() >= 2);
    }

    #[test]
    fn budget_cuts_rounds_deterministically() {
        let mut rng = Rng64::new(83);
        let m = banded_glass(200, 3, &mut rng);
        let p = ShardedParams {
            max_shard_vars: 64,
            rounds: 24,
            sweeps_per_round: 4,
            ..ShardedParams::default()
        };

        // A sweep cap of 8 = exactly 2 whole rounds.
        let r = sharded_anneal_with_budget(&m, &p, &Budget::sweeps(8), &mut Rng64::new(85));
        assert_eq!(r.trace.len(), 2);
        assert!(r.exhausted);
        assert!((m.energy(&r.spins) - r.energy).abs() < 1e-9);

        // Fewer budgeted sweeps than one round: zero rounds run, and the
        // initial random state comes back anchored with an empty trace.
        let cut = sharded_anneal_with_budget(&m, &p, &Budget::sweeps(3), &mut Rng64::new(85));
        assert!(cut.trace.is_empty());
        assert!(cut.exhausted);
        assert!((m.energy(&cut.spins) - cut.energy).abs() < 1e-9);

        // A round costs 200 × 4 = 800 proposals pre-quench; a bound of
        // 1000 runs round one whole and refuses round two.
        let tight =
            sharded_anneal_with_budget(&m, &p, &Budget::proposals(1000), &mut Rng64::new(85));
        assert_eq!(tight.proposals, 800);
        assert_eq!(tight.trace.len(), 1);
        assert!(tight.exhausted);

        // A roomy budget is bit-identical to the unbudgeted path.
        let plain = sharded_anneal(&m, &p, &mut Rng64::new(87));
        let roomy =
            sharded_anneal_with_budget(&m, &p, &Budget::proposals(u64::MAX), &mut Rng64::new(87));
        assert_eq!(plain.energy.to_bits(), roomy.energy.to_bits());
        assert_eq!(plain.spins, roomy.spins);
        assert_eq!(plain.proposals, roomy.proposals);
        assert!(!roomy.exhausted);
    }

    #[test]
    fn shard_energies_reconstruct_global_energy() {
        let mut rng = Rng64::new(73);
        let m = banded_glass(200, 4, &mut rng);
        let p = partition_graph(m.adjacency(), 48, 3, &mut rng);
        for _ in 0..10 {
            let s: Vec<i8> = (0..200)
                .map(|_| if rng.chance(0.5) { 1 } else { -1 })
                .collect();
            let (internal, cut) = p.shard_energies(&m, &s);
            let sum: f64 = internal.iter().sum::<f64>() + cut + m.offset();
            assert!((sum - m.energy(&s)).abs() < 1e-9);
        }
    }

    #[test]
    fn partitioner_prefers_the_weak_links() {
        // Two dense 16-var cliques joined by one weak edge: the cut must
        // be the bridge, not a clique interior.
        let mut couplings = Vec::new();
        for base in [0usize, 16] {
            for i in 0..16 {
                for j in (i + 1)..16 {
                    couplings.push((base + i, base + j, -1.0));
                }
            }
        }
        couplings.push((7, 23, 0.05));
        let m = Ising::new(vec![0.0; 32], couplings, 0.0);
        let mut rng = Rng64::new(75);
        let p = partition_graph(m.adjacency(), 16, 4, &mut rng);
        assert_eq!(p.n_shards(), 2);
        assert_eq!(p.cut_edges().len(), 1);
        assert!((p.cut_weight() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn partitioner_is_deterministic_for_a_seed() {
        let mut rng = Rng64::new(77);
        let m = banded_glass(400, 3, &mut rng);
        let p1 = partition_graph(m.adjacency(), 50, 4, &mut Rng64::new(5));
        let p2 = partition_graph(m.adjacency(), 50, 4, &mut Rng64::new(5));
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(p1.cut_edges(), p2.cut_edges());
    }

    #[test]
    fn single_shard_when_the_model_fits() {
        let mut rng = Rng64::new(79);
        let m = banded_glass(40, 2, &mut rng);
        let p = partition_graph(m.adjacency(), 64, 4, &mut rng);
        assert_eq!(p.n_shards(), 1);
        assert!(p.cut_edges().is_empty());
        assert_eq!(p.cut_weight(), 0.0);
    }

    #[test]
    fn embedding_budget_matches_the_clique_bound() {
        for m in 1..=4 {
            let device = DeviceConfig {
                fabric_m: m,
                ..DeviceConfig::default()
            };
            let budget = embedding_shard_budget(&device);
            assert_eq!(budget, 4 * m);
            let fabric = Chimera::new(m);
            assert!(clique_embedding(budget, &fabric).is_some());
            assert!(clique_embedding(budget + 1, &fabric).is_none());
        }
    }

    #[test]
    fn device_sized_shards_respect_the_qubit_budget() {
        let device = DeviceConfig::default(); // C(4): 16-var budget
        let params = ShardedParams::for_device(&device);
        assert_eq!(params.max_shard_vars, 16);
        let mut rng = Rng64::new(81);
        let m = banded_glass(120, 2, &mut rng);
        let p = partition_graph(m.adjacency(), params.max_shard_vars, 4, &mut rng);
        let fabric = Chimera::new(device.fabric_m);
        for shard in p.shards() {
            assert!(shard.len() <= 16);
            assert!(clique_embedding(shard.len(), &fabric).is_some());
        }
    }

    #[test]
    fn sharded_anneal_solves_a_ferromagnetic_chain() {
        // 96-spin ferromagnetic chain split across ~6 shards: boundary
        // exchange + polish must align the domains to the ground state.
        let m = Ising::new(
            vec![0.0; 96],
            (0..95).map(|i| (i, i + 1, -1.0)).collect(),
            0.0,
        );
        let mut rng = Rng64::new(83);
        let r = sharded_anneal(
            &m,
            &ShardedParams {
                max_shard_vars: 16,
                rounds: 80,
                sweeps_per_round: 5,
                ..ShardedParams::default()
            },
            &mut rng,
        );
        assert!(
            (r.energy + 95.0).abs() < 1e-12,
            "ground -95, got {}",
            r.energy
        );
        assert!(r.n_shards >= 4);
    }

    #[test]
    fn sharded_matches_brute_force_on_a_small_glass() {
        let mut rng = Rng64::new(85);
        let m = banded_glass(18, 3, &mut rng);
        let (_, exact) = m.brute_force_ground();
        let r = sharded_anneal(
            &m,
            &ShardedParams {
                max_shard_vars: 6,
                rounds: 60,
                sweeps_per_round: 8,
                ..ShardedParams::default()
            },
            &mut rng,
        );
        assert!(
            (r.energy - exact).abs() < 1e-9,
            "sharded {} vs exact {exact}",
            r.energy
        );
    }

    #[test]
    fn reported_energy_matches_reported_spins_exactly() {
        let mut rng = Rng64::new(87);
        let m = banded_glass(150, 3, &mut rng);
        let r = sharded_anneal(
            &m,
            &ShardedParams {
                max_shard_vars: 32,
                rounds: 4,
                sweeps_per_round: 4,
                ..ShardedParams::default()
            },
            &mut rng,
        );
        assert_eq!(r.energy.to_bits(), m.energy(&r.spins).to_bits());
        assert!(r.proposals > 0);
        for w in r.trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "trace must be non-increasing");
        }
    }

    #[test]
    fn qubo_entry_point_round_trips() {
        let mut rng = Rng64::new(89);
        let linear: Vec<f64> = (0..60).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let mut quad = Vec::new();
        for i in 0..59usize {
            quad.push((i, i + 1, rng.uniform_range(-1.0, 1.0)));
        }
        let q = SparseQubo::from_terms(linear, quad, 0.3);
        let (bits, r) = sharded_anneal_qubo(
            &q,
            &ShardedParams {
                max_shard_vars: 16,
                rounds: 6,
                sweeps_per_round: 10,
                ..ShardedParams::default()
            },
            &mut rng,
        );
        assert_eq!(bits.len(), 60);
        assert!((q.energy(&bits) - r.energy).abs() < 1e-9);
    }
}
