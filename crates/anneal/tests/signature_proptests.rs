//! Property-based tests for canonical QUBO signatures. Runs on the
//! in-repo `check` harness.

use qmldb_anneal::{qubo_signature, sparse_signature, Qubo, SparseQubo};
use qmldb_math::{check, Rng64};

/// Random sparse term list on `n` variables: some linear, some quadratic,
/// possibly with duplicate (i, j) pairs (merged by the model builders).
fn random_terms(n: usize, rng: &mut Rng64) -> (Vec<(usize, usize)>, Vec<f64>) {
    let n_terms = 3 + rng.index(2 * n);
    let mut pairs = Vec::with_capacity(n_terms);
    let mut weights = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        let i = rng.index(n);
        let j = rng.index(n);
        pairs.push((i, j));
        weights.push(rng.uniform_range(-5.0, 5.0));
    }
    (pairs, weights)
}

fn build_dense(n: usize, pairs: &[(usize, usize)], weights: &[f64], offset: f64) -> Qubo {
    let mut q = Qubo::new(n);
    for (&(i, j), &w) in pairs.iter().zip(weights) {
        q.add(i, j, w);
    }
    q.add_offset(offset);
    q
}

#[test]
fn insertion_order_never_changes_signature() {
    check::cases("insertion_order_never_changes_signature", 64, |rng| {
        let n = 4 + rng.index(8);
        let (pairs, weights) = random_terms(n, rng);
        let offset = rng.uniform_range(-3.0, 3.0);
        let base = build_dense(n, &pairs, &weights, offset);

        let mut order: Vec<usize> = (0..pairs.len()).collect();
        rng.shuffle(&mut order);
        let perm_pairs: Vec<_> = order.iter().map(|&k| pairs[k]).collect();
        let perm_weights: Vec<_> = order.iter().map(|&k| weights[k]).collect();
        let permuted = build_dense(n, &perm_pairs, &perm_weights, offset);

        assert_eq!(qubo_signature(&base), qubo_signature(&permuted));
    });
}

#[test]
fn explicit_zeros_never_change_signature() {
    check::cases("explicit_zeros_never_change_signature", 64, |rng| {
        let n = 4 + rng.index(8);
        let (pairs, weights) = random_terms(n, rng);
        let offset = rng.uniform_range(-3.0, 3.0);
        let base = build_dense(n, &pairs, &weights, offset);

        let mut padded = build_dense(n, &pairs, &weights, offset);
        for _ in 0..4 {
            padded.add(rng.index(n), rng.index(n), 0.0);
        }
        assert_eq!(qubo_signature(&base), qubo_signature(&padded));
    });
}

#[test]
fn positive_rescale_never_changes_signature() {
    check::cases("positive_rescale_never_changes_signature", 64, |rng| {
        let n = 4 + rng.index(8);
        let (pairs, weights) = random_terms(n, rng);
        let offset = rng.uniform_range(-3.0, 3.0);
        let base = build_dense(n, &pairs, &weights, offset);

        // Both exact (power of two) and inexact scales; the 2⁻³²
        // quantization absorbs the rounding of the inexact ones.
        let scale = [2.0, 0.5, 3.0, 7.25][rng.index(4)];
        let scaled_weights: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let scaled = build_dense(n, &pairs, &scaled_weights, offset * scale);
        assert_eq!(qubo_signature(&base), qubo_signature(&scaled));
    });
}

#[test]
fn sparse_matches_dense_on_the_same_model() {
    check::cases("sparse_matches_dense_on_the_same_model", 64, |rng| {
        let n = 4 + rng.index(8);
        let (pairs, weights) = random_terms(n, rng);
        let offset = rng.uniform_range(-3.0, 3.0);
        let dense = build_dense(n, &pairs, &weights, offset);

        // SparseQubo rejects diagonal quadratic terms: route them to linear.
        let mut linear = vec![0.0; n];
        let mut quad = Vec::new();
        for (&(i, j), &w) in pairs.iter().zip(&weights) {
            if i == j {
                linear[i] += w;
            } else {
                quad.push((i, j, w));
            }
        }
        let sparse = SparseQubo::from_terms(linear, quad, offset);
        assert_eq!(qubo_signature(&dense), sparse_signature(&sparse));
    });
}

#[test]
fn perturbing_any_term_changes_signature() {
    check::cases("perturbing_any_term_changes_signature", 64, |rng| {
        let n = 4 + rng.index(8);
        let (pairs, weights) = random_terms(n, rng);
        let offset = rng.uniform_range(-3.0, 3.0);
        let base = build_dense(n, &pairs, &weights, offset);

        // A perturbation far above quantization resolution must be seen
        // (collisions are possible only by 2⁻⁶⁴ hash accident; with 64
        // seeded cases a spurious pass of this assert would be a bug).
        let mut bumped = build_dense(n, &pairs, &weights, offset);
        bumped.add(rng.index(n), rng.index(n), rng.uniform_range(0.5, 2.0));
        assert_ne!(qubo_signature(&base), qubo_signature(&bumped));
    });
}
