//! Property-based tests for QUBO/Ising models and solvers.

use proptest::prelude::*;
use qmldb_anneal::{
    bits_to_spins, simulated_annealing, solve_exact, spins_to_bits, Qubo, QuboBuilder, SaParams,
};
use qmldb_math::Rng64;

/// Strategy: a random QUBO on `n` variables from a coefficient list.
fn qubo_strategy(n: usize) -> impl Strategy<Value = Qubo> {
    let n_terms = n * (n + 1) / 2;
    prop::collection::vec(-5.0..5.0f64, n_terms).prop_map(move |coeffs| {
        let mut q = Qubo::new(n);
        let mut it = coeffs.into_iter();
        for i in 0..n {
            for j in i..n {
                q.add(i, j, it.next().unwrap());
            }
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delta_energy_matches_full_recomputation(
        q in qubo_strategy(8),
        start in 0usize..256,
        flip in 0usize..8,
    ) {
        let mut x: Vec<bool> = (0..8).map(|i| start & (1 << i) != 0).collect();
        let before = q.energy(&x);
        let delta = q.delta_energy(&x, flip);
        x[flip] = !x[flip];
        let after = q.energy(&x);
        prop_assert!((after - before - delta).abs() < 1e-9);
    }

    #[test]
    fn qubo_ising_roundtrip_preserves_all_energies(
        q in qubo_strategy(6),
        idx in 0usize..64,
    ) {
        let ising = q.to_ising();
        let back = ising.to_qubo();
        let x: Vec<bool> = (0..6).map(|i| idx & (1 << i) != 0).collect();
        let s = bits_to_spins(&x);
        prop_assert!((q.energy(&x) - ising.energy(&s)).abs() < 1e-9);
        prop_assert!((q.energy(&x) - back.energy(&x)).abs() < 1e-9);
    }

    #[test]
    fn ising_delta_flip_matches_energy_difference(
        q in qubo_strategy(7),
        start in 0usize..128,
        flip in 0usize..7,
    ) {
        let ising = q.to_ising();
        let mut s: Vec<i8> = (0..7).map(|i| if start & (1 << i) != 0 { 1 } else { -1 }).collect();
        let before = ising.energy(&s);
        let d = ising.delta_flip(&s, flip);
        s[flip] = -s[flip];
        prop_assert!((ising.energy(&s) - before - d).abs() < 1e-9);
    }

    #[test]
    fn exact_solver_energy_is_a_global_lower_bound(
        q in qubo_strategy(7),
        idx in 0usize..128,
    ) {
        let sol = solve_exact(&q);
        prop_assert!(sol.energy <= q.energy_of_index(idx) + 1e-9);
        prop_assert!((q.energy(&sol.bits) - sol.energy).abs() < 1e-9);
    }

    #[test]
    fn sa_never_reports_energy_below_exact(q in qubo_strategy(7)) {
        let exact = solve_exact(&q);
        let mut rng = Rng64::new(4242);
        let r = simulated_annealing(
            &q.to_ising(),
            &SaParams { sweeps: 200, restarts: 2, ..SaParams::default() },
            &mut rng,
        );
        prop_assert!(r.energy >= exact.energy - 1e-9);
        // And the reported energy is the energy of the reported spins.
        prop_assert!((q.to_ising().energy(&r.spins) - r.energy).abs() < 1e-9);
        prop_assert!((q.energy(&spins_to_bits(&r.spins)) - r.energy).abs() < 1e-9);
    }

    #[test]
    fn one_hot_penalty_zero_iff_exactly_one(
        mask in 0usize..32,
        penalty in 0.5..10.0f64,
    ) {
        let mut b = QuboBuilder::new(5);
        b.one_hot(&[0, 1, 2, 3, 4], penalty);
        let q = b.build();
        let x: Vec<bool> = (0..5).map(|i| mask & (1 << i) != 0).collect();
        let ones = x.iter().filter(|&&v| v).count();
        let e = q.energy(&x);
        if ones == 1 {
            prop_assert!(e.abs() < 1e-9);
        } else {
            prop_assert!(e >= penalty - 1e-9);
        }
    }
}
