//! Property-based tests for QUBO/Ising models and solvers. Runs on the
//! in-repo `check` harness.

use qmldb_anneal::{
    bits_to_spins, simulated_annealing, solve_exact, spins_to_bits, Qubo, QuboBuilder, SaParams,
};
use qmldb_math::{check, Rng64};

/// A random QUBO on `n` variables with uniform coefficients in [-5, 5).
fn random_qubo(n: usize, rng: &mut Rng64) -> Qubo {
    let mut q = Qubo::new(n);
    for i in 0..n {
        for j in i..n {
            q.add(i, j, rng.uniform_range(-5.0, 5.0));
        }
    }
    q
}

#[test]
fn delta_energy_matches_full_recomputation() {
    check::cases("delta_energy_matches_full_recomputation", 48, |rng| {
        let q = random_qubo(8, rng);
        let start = rng.index(256);
        let flip = rng.index(8);
        let mut x: Vec<bool> = (0..8).map(|i| start & (1 << i) != 0).collect();
        let before = q.energy(&x);
        let delta = q.delta_energy(&x, flip);
        x[flip] = !x[flip];
        let after = q.energy(&x);
        assert!((after - before - delta).abs() < 1e-9);
    });
}

#[test]
fn qubo_ising_roundtrip_preserves_all_energies() {
    check::cases("qubo_ising_roundtrip_preserves_all_energies", 48, |rng| {
        let q = random_qubo(6, rng);
        let idx = rng.index(64);
        let ising = q.to_ising();
        let back = ising.to_qubo();
        let x: Vec<bool> = (0..6).map(|i| idx & (1 << i) != 0).collect();
        let s = bits_to_spins(&x);
        assert!((q.energy(&x) - ising.energy(&s)).abs() < 1e-9);
        assert!((q.energy(&x) - back.energy(&x)).abs() < 1e-9);
    });
}

#[test]
fn ising_delta_flip_matches_energy_difference() {
    check::cases("ising_delta_flip_matches_energy_difference", 48, |rng| {
        let q = random_qubo(7, rng);
        let start = rng.index(128);
        let flip = rng.index(7);
        let ising = q.to_ising();
        let mut s: Vec<i8> = (0..7)
            .map(|i| if start & (1 << i) != 0 { 1 } else { -1 })
            .collect();
        let before = ising.energy(&s);
        let d = ising.delta_flip(&s, flip);
        s[flip] = -s[flip];
        assert!((ising.energy(&s) - before - d).abs() < 1e-9);
    });
}

#[test]
fn exact_solver_energy_is_a_global_lower_bound() {
    check::cases("exact_solver_energy_is_a_global_lower_bound", 48, |rng| {
        let q = random_qubo(7, rng);
        let idx = rng.index(128);
        let sol = solve_exact(&q);
        assert!(sol.energy <= q.energy_of_index(idx) + 1e-9);
        assert!((q.energy(&sol.bits) - sol.energy).abs() < 1e-9);
    });
}

#[test]
fn sa_never_reports_energy_below_exact() {
    check::cases("sa_never_reports_energy_below_exact", 48, |rng| {
        let q = random_qubo(7, rng);
        let exact = solve_exact(&q);
        let mut sa_rng = Rng64::new(4242);
        let r = simulated_annealing(
            &q.to_ising(),
            &SaParams {
                sweeps: 200,
                restarts: 2,
                ..SaParams::default()
            },
            &mut sa_rng,
        );
        assert!(r.energy >= exact.energy - 1e-9);
        // And the reported energy is the energy of the reported spins.
        assert!((q.to_ising().energy(&r.spins) - r.energy).abs() < 1e-9);
        assert!((q.energy(&spins_to_bits(&r.spins)) - r.energy).abs() < 1e-9);
    });
}

#[test]
fn one_hot_penalty_zero_iff_exactly_one() {
    check::cases("one_hot_penalty_zero_iff_exactly_one", 48, |rng| {
        let mask = rng.index(32);
        let penalty = rng.uniform_range(0.5, 10.0);
        let mut b = QuboBuilder::new(5);
        b.one_hot(&[0, 1, 2, 3, 4], penalty);
        let q = b.build();
        let x: Vec<bool> = (0..5).map(|i| mask & (1 << i) != 0).collect();
        let ones = x.iter().filter(|&&v| v).count();
        let e = q.energy(&x);
        if ones == 1 {
            assert!(e.abs() < 1e-9);
        } else {
            assert!(e >= penalty - 1e-9);
        }
    });
}
