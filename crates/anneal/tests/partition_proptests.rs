//! Property-based tests for the domain-decomposition layer
//! (`qmldb_anneal::partition`). Runs on the in-repo `check` harness.
//!
//! The invariants the sharded annealer leans on:
//!  1. a partition is a true partition — every variable in exactly one
//!     shard, no shard above the requested budget;
//!  2. per-shard internal energies plus the cut boundary term reconstruct
//!     the exact global energy, so the outer exchange rounds can re-anchor
//!     without a drift term.

use qmldb_anneal::{partition_graph, Ising, Qubo, SparseQubo};
use qmldb_math::{check, Rng64};

/// A random sparse Ising model: `degree` random couplings per spin plus a
/// field on every spin, coefficients uniform in [-2, 2).
fn random_sparse_ising(n: usize, degree: usize, rng: &mut Rng64) -> Ising {
    let h: Vec<f64> = (0..n).map(|_| rng.uniform_range(-2.0, 2.0)).collect();
    let mut couplings = Vec::new();
    for i in 0..n {
        for _ in 0..degree {
            let j = rng.index(n);
            if j != i {
                couplings.push((i, j, rng.uniform_range(-2.0, 2.0)));
            }
        }
    }
    Ising::new(h, couplings, rng.uniform_range(-3.0, 3.0))
}

/// A fully dense QUBO on `n` variables, converted to Ising form.
fn random_dense_ising(n: usize, rng: &mut Rng64) -> Ising {
    let mut q = Qubo::new(n);
    for i in 0..n {
        for j in i..n {
            q.add(i, j, rng.uniform_range(-3.0, 3.0));
        }
    }
    q.to_ising()
}

/// A random sparse QUBO in Ising form, exercising the `SparseQubo`
/// conversion path the large-instance pipeline uses.
fn random_sparse_qubo_ising(n: usize, degree: usize, rng: &mut Rng64) -> Ising {
    let linear: Vec<f64> = (0..n).map(|_| rng.uniform_range(-2.0, 2.0)).collect();
    let mut quad = Vec::new();
    for i in 0..n {
        for _ in 0..degree {
            let j = rng.index(n);
            if j != i {
                quad.push((i, j, rng.uniform_range(-2.0, 2.0)));
            }
        }
    }
    SparseQubo::from_terms(linear, quad, rng.uniform_range(-3.0, 3.0)).to_ising()
}

fn random_spins(n: usize, rng: &mut Rng64) -> Vec<i8> {
    (0..n)
        .map(|_| if rng.chance(0.5) { 1 } else { -1 })
        .collect()
}

#[test]
fn every_variable_is_in_exactly_one_shard() {
    check::cases("every_variable_is_in_exactly_one_shard", 24, |rng| {
        let n = 20 + rng.index(180);
        let degree = 1 + rng.index(4);
        let cap = 8 + rng.index(40);
        let model = random_sparse_ising(n, degree, rng);
        let p = partition_graph(model.adjacency(), cap, 2, rng);
        let mut seen = vec![0usize; n];
        for (shard, members) in p.shards().iter().enumerate() {
            for &v in members {
                assert_eq!(p.assignment()[v as usize], shard as u32);
                seen[v as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "n={n} cap={cap}");
    });
}

#[test]
fn shards_respect_the_requested_budget() {
    check::cases("shards_respect_the_requested_budget", 24, |rng| {
        let n = 20 + rng.index(180);
        let degree = 1 + rng.index(4);
        let cap = 8 + rng.index(40);
        let model = random_sparse_ising(n, degree, rng);
        let p = partition_graph(model.adjacency(), cap, 2, rng);
        assert!(
            p.max_shard_size() <= cap,
            "n={n} cap={cap} got {}",
            p.max_shard_size()
        );
        assert!(p.n_shards() >= 1);
    });
}

#[test]
fn shard_energies_reconstruct_sparse_ising_energy() {
    check::cases(
        "shard_energies_reconstruct_sparse_ising_energy",
        24,
        |rng| {
            let n = 20 + rng.index(120);
            let model = random_sparse_ising(n, 1 + rng.index(4), rng);
            let p = partition_graph(model.adjacency(), 8 + rng.index(24), 2, rng);
            let s = random_spins(n, rng);
            let (internal, cut) = p.shard_energies(&model, &s);
            let rebuilt: f64 = internal.iter().sum::<f64>() + cut + model.offset();
            assert!(
                (rebuilt - model.energy(&s)).abs() < 1e-9,
                "n={n} rebuilt={rebuilt} exact={}",
                model.energy(&s)
            );
        },
    );
}

#[test]
fn shard_energies_reconstruct_dense_qubo_energy() {
    check::cases("shard_energies_reconstruct_dense_qubo_energy", 16, |rng| {
        let n = 12 + rng.index(28);
        let model = random_dense_ising(n, rng);
        let p = partition_graph(model.adjacency(), 6 + rng.index(10), 2, rng);
        let s = random_spins(n, rng);
        let (internal, cut) = p.shard_energies(&model, &s);
        let rebuilt: f64 = internal.iter().sum::<f64>() + cut + model.offset();
        assert!(
            (rebuilt - model.energy(&s)).abs() < 1e-9,
            "n={n} rebuilt={rebuilt} exact={}",
            model.energy(&s)
        );
    });
}

#[test]
fn shard_energies_reconstruct_sparse_qubo_energy() {
    check::cases("shard_energies_reconstruct_sparse_qubo_energy", 24, |rng| {
        let n = 20 + rng.index(120);
        let model = random_sparse_qubo_ising(n, 1 + rng.index(4), rng);
        let p = partition_graph(model.adjacency(), 8 + rng.index(24), 2, rng);
        let s = random_spins(n, rng);
        let (internal, cut) = p.shard_energies(&model, &s);
        let rebuilt: f64 = internal.iter().sum::<f64>() + cut + model.offset();
        assert!(
            (rebuilt - model.energy(&s)).abs() < 1e-9,
            "n={n} rebuilt={rebuilt} exact={}",
            model.energy(&s)
        );
    });
}

#[test]
fn cut_edges_connect_distinct_shards_and_sum_to_cut_weight() {
    check::cases(
        "cut_edges_connect_distinct_shards_and_sum_to_cut_weight",
        24,
        |rng| {
            let n = 20 + rng.index(120);
            let model = random_sparse_ising(n, 1 + rng.index(4), rng);
            let p = partition_graph(model.adjacency(), 8 + rng.index(24), 2, rng);
            let mut total = 0.0;
            for &(a, b, w) in p.cut_edges() {
                assert_ne!(
                    p.assignment()[a as usize],
                    p.assignment()[b as usize],
                    "cut edge ({a},{b}) is internal"
                );
                total += w.abs();
            }
            assert!((total - p.cut_weight()).abs() < 1e-9);
        },
    );
}
