//! Property tests for the incremental local-field engine: after long
//! random accept/reject flip sequences, every cached field and the
//! running energy must agree with a full recomputation, on dense and
//! sparse models alike — the invariant all four solvers (SA, SQA, tabu,
//! tempering) now stand on. Runs on the in-repo `check` harness.

use qmldb_anneal::{CsrAdjacency, Ising, IsingFields, Qubo, QuboFields};
use qmldb_math::{check, Rng64};

/// A random Ising glass with edge density `p`.
fn random_ising(n: usize, p: f64, rng: &mut Rng64) -> Ising {
    let mut couplings = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.chance(p) {
                couplings.push((i, j, rng.uniform_range(-2.0, 2.0)));
            }
        }
    }
    let h: Vec<f64> = (0..n).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
    Ising::new(h, couplings, rng.uniform_range(-1.0, 1.0))
}

/// A random QUBO with off-diagonal density `p`.
fn random_qubo(n: usize, p: f64, rng: &mut Rng64) -> Qubo {
    let mut q = Qubo::new(n);
    for i in 0..n {
        q.add_linear(i, rng.uniform_range(-2.0, 2.0));
        for j in (i + 1)..n {
            if rng.chance(p) {
                q.add(i, j, rng.uniform_range(-2.0, 2.0));
            }
        }
    }
    q.add_offset(rng.uniform_range(-1.0, 1.0));
    q
}

/// Drives `flips` random accept/reject proposals through an Ising field
/// cache, then checks every cached field and the running energy against
/// full recomputation.
fn exercise_ising(model: &Ising, flips: usize, rng: &mut Rng64) {
    let n = model.n();
    let mut s: Vec<i8> = (0..n)
        .map(|_| if rng.chance(0.5) { 1 } else { -1 })
        .collect();
    let mut fields = IsingFields::new(model, &s);
    let mut energy = model.energy(&s);
    for step in 0..flips {
        let i = rng.index(n);
        let d = fields.delta_flip(&s, i);
        // Spot-check the O(1) delta against the O(deg) rescan mid-run.
        if step % 997 == 0 {
            assert!(
                (d - model.delta_flip(&s, i)).abs() < 1e-9,
                "delta drift at step {step}"
            );
        }
        // Accept-or-reject at random: rejected proposals must leave the
        // cache untouched, accepted ones must repair it.
        if rng.chance(0.5) {
            fields.apply_flip(model, &mut s, i);
            energy += d;
        }
    }
    let fresh = IsingFields::new(model, &s);
    for i in 0..n {
        assert!(
            (fields.field(i) - fresh.field(i)).abs() < 1e-9,
            "field {i} drifted: cached {} vs fresh {}",
            fields.field(i),
            fresh.field(i)
        );
    }
    assert!(
        (energy - model.energy(&s)).abs() < 1e-9,
        "running energy drifted: {energy} vs {}",
        model.energy(&s)
    );
}

/// QUBO analogue of [`exercise_ising`].
fn exercise_qubo(qubo: &Qubo, flips: usize, rng: &mut Rng64) {
    let n = qubo.n();
    let adj = qubo.adjacency();
    let mut x: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
    let mut fields = QuboFields::new(qubo, &adj, &x);
    let mut energy = qubo.energy(&x);
    for step in 0..flips {
        let i = rng.index(n);
        let d = fields.delta_flip(&x, i);
        if step % 997 == 0 {
            assert!(
                (d - qubo.delta_energy(&x, i)).abs() < 1e-9,
                "delta drift at step {step}"
            );
        }
        if rng.chance(0.5) {
            fields.apply_flip(&adj, &mut x, i);
            energy += d;
        }
    }
    let fresh = QuboFields::new(qubo, &adj, &x);
    for i in 0..n {
        assert!(
            (fields.field(i) - fresh.field(i)).abs() < 1e-9,
            "field {i} drifted"
        );
    }
    assert!(
        (energy - qubo.energy(&x)).abs() < 1e-9,
        "running energy drifted: {energy} vs {}",
        qubo.energy(&x)
    );
}

#[test]
fn ising_fields_survive_long_flip_sequences_dense() {
    check::cases("ising_fields_survive_long_flip_sequences_dense", 8, |rng| {
        let model = random_ising(24, 1.0, rng);
        exercise_ising(&model, 12_000, rng);
    });
}

#[test]
fn ising_fields_survive_long_flip_sequences_sparse() {
    check::cases(
        "ising_fields_survive_long_flip_sequences_sparse",
        8,
        |rng| {
            let model = random_ising(48, 0.1, rng);
            exercise_ising(&model, 12_000, rng);
        },
    );
}

#[test]
fn qubo_fields_survive_long_flip_sequences_dense() {
    check::cases("qubo_fields_survive_long_flip_sequences_dense", 8, |rng| {
        let qubo = random_qubo(24, 1.0, rng);
        exercise_qubo(&qubo, 12_000, rng);
    });
}

#[test]
fn qubo_fields_survive_long_flip_sequences_sparse() {
    check::cases("qubo_fields_survive_long_flip_sequences_sparse", 8, |rng| {
        let qubo = random_qubo(48, 0.1, rng);
        exercise_qubo(&qubo, 12_000, rng);
    });
}

#[test]
fn ising_csr_rows_match_the_triple_list() {
    check::cases("ising_csr_rows_match_the_triple_list", 32, |rng| {
        let n = 3 + rng.index(20);
        let model = random_ising(n, 0.4, rng);
        // Reconstruct per-node neighborhoods from the (i, j, J) triples.
        let mut expected: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(a, b, j) in model.couplings() {
            expected[a].push((b, j));
            expected[b].push((a, j));
        }
        for row in &mut expected {
            row.sort_by_key(|&(t, _)| t);
        }
        let adj = model.adjacency();
        assert_eq!(adj.n(), n);
        assert_eq!(adj.nnz(), 2 * model.couplings().len());
        for i in 0..n {
            let got: Vec<(usize, f64)> = adj.iter_row(i).collect();
            assert_eq!(got, expected[i], "row {i}");
            let through_model: Vec<(usize, f64)> = model.neighbors(i).collect();
            assert_eq!(got, through_model, "neighbors accessor row {i}");
        }
    });
}

#[test]
fn qubo_csr_matches_coefficient_matrix() {
    check::cases("qubo_csr_matches_coefficient_matrix", 32, |rng| {
        let n = 3 + rng.index(16);
        let qubo = random_qubo(n, 0.5, rng);
        let adj = qubo.adjacency();
        for i in 0..n {
            let row: Vec<(usize, f64)> = adj.iter_row(i).collect();
            let expected: Vec<(usize, f64)> = (0..n)
                .filter(|&j| j != i && qubo.get(i, j) != 0.0)
                .map(|j| (j, qubo.get(i, j)))
                .collect();
            assert_eq!(row, expected, "row {i}");
        }
    });
}

#[test]
fn csr_from_edges_is_order_insensitive() {
    check::cases("csr_from_edges_is_order_insensitive", 16, |rng| {
        let n = 4 + rng.index(12);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.chance(0.5) {
                    edges.push((i, j, rng.uniform_range(-1.0, 1.0)));
                }
            }
        }
        let a = CsrAdjacency::from_edges(n, &edges);
        let mut shuffled = edges.clone();
        rng.shuffle(&mut shuffled);
        let b = CsrAdjacency::from_edges(n, &shuffled);
        assert_eq!(a, b, "CSR layout must not depend on edge order");
    });
}
