//! Property-based tests for the density-matrix engine: CPTP invariants
//! that must hold for arbitrary circuits and channels. Runs on the in-repo
//! `check` harness.

use qmldb_math::{check, Rng64};
use qmldb_sim::{Channel, Circuit, DensityMatrix, Simulator, StateVector};

const N: usize = 3;

/// Appends one random instruction from the unitary alphabet these tests
/// exercise.
fn random_instr(c: &mut Circuit, n: usize, rng: &mut Rng64) {
    let other = |rng: &mut Rng64, a: usize| {
        let b = rng.index(n - 1);
        if b >= a {
            b + 1
        } else {
            b
        }
    };
    match rng.index(6) {
        0 => c.h(rng.index(n)),
        1 => c.x(rng.index(n)),
        2 => {
            let t = rng.uniform_range(-3.0, 3.0);
            c.ry(rng.index(n), t)
        }
        3 => {
            let t = rng.uniform_range(-3.0, 3.0);
            c.rz(rng.index(n), t)
        }
        4 => {
            let a = rng.index(n);
            let b = other(rng, a);
            c.cx(a, b)
        }
        _ => {
            let a = rng.index(n);
            let b = other(rng, a);
            c.cz(a, b)
        }
    };
}

fn random_circuit(n: usize, max_len: usize, rng: &mut Rng64) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..rng.index(max_len + 1) {
        random_instr(&mut c, n, rng);
    }
    c
}

fn random_channel(rng: &mut Rng64) -> Channel {
    let p = rng.uniform();
    match rng.index(5) {
        0 => Channel::Depolarizing(p),
        1 => Channel::BitFlip(p),
        2 => Channel::PhaseFlip(p),
        3 => Channel::AmplitudeDamping(p),
        _ => Channel::PhaseDamping(p),
    }
}

#[test]
fn unitary_evolution_matches_statevector() {
    check::cases("unitary_evolution_matches_statevector", 48, |rng| {
        let c = random_circuit(N, 20, rng);
        let mut sv = StateVector::zero(N);
        sv.run(&c, &[]);
        let mut dm = DensityMatrix::zero(N);
        dm.run(&c, &[]);
        assert!((dm.fidelity_pure(&sv) - 1.0).abs() < 1e-8);
        assert!((dm.purity() - 1.0).abs() < 1e-8);
    });
}

#[test]
fn channels_preserve_trace_and_bound_purity() {
    check::cases("channels_preserve_trace_and_bound_purity", 48, |rng| {
        let c = random_circuit(N, 12, rng);
        let ch = random_channel(rng);
        let target = rng.index(N);
        let mut dm = DensityMatrix::zero(N);
        dm.run(&c, &[]);
        dm.apply_kraus(&ch.kraus(), &[target]);
        assert!((dm.trace() - 1.0).abs() < 1e-8, "trace {}", dm.trace());
        let p = dm.purity();
        let floor = 1.0 / (1 << N) as f64;
        assert!(p <= 1.0 + 1e-8 && p >= floor - 1e-8, "purity {p}");
        // Probabilities form a distribution.
        let probs = dm.probabilities();
        assert!(probs.iter().all(|&v| v >= -1e-9));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-8);
    });
}

#[test]
fn noise_never_increases_purity() {
    check::cases("noise_never_increases_purity", 48, |rng| {
        let c = random_circuit(N, 12, rng);
        let p = rng.uniform_range(0.0, 0.5);
        let target = rng.index(N);
        let mut dm = DensityMatrix::zero(N);
        dm.run(&c, &[]);
        let before = dm.purity();
        dm.apply_kraus(&Channel::Depolarizing(p).kraus(), &[target]);
        assert!(dm.purity() <= before + 1e-9);
    });
}

#[test]
fn noisy_expectations_are_contracted_toward_zero() {
    use qmldb_sim::{NoiseModel, PauliString, PauliSum};
    check::cases("noisy_expectations_are_contracted_toward_zero", 48, |rng| {
        let c = random_circuit(N, 10, rng);
        let q = rng.index(N);
        let h = PauliSum::from_terms(vec![(1.0, PauliString::z(q))]);
        let clean = Simulator::new().expectation(&c, &[], &h);
        let noisy =
            Simulator::with_noise(NoiseModel::depolarizing(0.1, 0.1)).expectation(&c, &[], &h);
        assert!(
            noisy.abs() <= clean.abs() + 1e-8,
            "noise amplified <Z{q}>: {clean} -> {noisy}"
        );
    });
}
