//! Property-based tests for the density-matrix engine: CPTP invariants
//! that must hold for arbitrary circuits and channels.

use proptest::prelude::*;
use qmldb_sim::{Channel, Circuit, DensityMatrix, Simulator, StateVector};

#[derive(Clone, Debug)]
enum Op {
    H(usize),
    X(usize),
    RY(usize, f64),
    RZ(usize, f64),
    CX(usize, usize),
    CZ(usize, usize),
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    let ang = -3.0..3.0f64;
    prop_oneof![
        (0..n).prop_map(Op::H),
        (0..n).prop_map(Op::X),
        (0..n, ang.clone()).prop_map(|(q, t)| Op::RY(q, t)),
        (0..n, ang).prop_map(|(q, t)| Op::RZ(q, t)),
        (0..n, 0..n - 1).prop_map(|(a, b)| Op::CX(a, if b >= a { b + 1 } else { b })),
        (0..n, 0..n - 1).prop_map(|(a, b)| Op::CZ(a, if b >= a { b + 1 } else { b })),
    ]
}

fn build(n: usize, ops: &[Op]) -> Circuit {
    let mut c = Circuit::new(n);
    for op in ops {
        match *op {
            Op::H(q) => c.h(q),
            Op::X(q) => c.x(q),
            Op::RY(q, t) => c.ry(q, t),
            Op::RZ(q, t) => c.rz(q, t),
            Op::CX(a, b) => c.cx(a, b),
            Op::CZ(a, b) => c.cz(a, b),
        };
    }
    c
}

fn channel_strategy() -> impl Strategy<Value = Channel> {
    prop_oneof![
        (0.0..1.0f64).prop_map(Channel::Depolarizing),
        (0.0..1.0f64).prop_map(Channel::BitFlip),
        (0.0..1.0f64).prop_map(Channel::PhaseFlip),
        (0.0..1.0f64).prop_map(Channel::AmplitudeDamping),
        (0.0..1.0f64).prop_map(Channel::PhaseDamping),
    ]
}

const N: usize = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unitary_evolution_matches_statevector(
        ops in prop::collection::vec(op_strategy(N), 0..20),
    ) {
        let c = build(N, &ops);
        let mut sv = StateVector::zero(N);
        sv.run(&c, &[]);
        let mut dm = DensityMatrix::zero(N);
        dm.run(&c, &[]);
        prop_assert!((dm.fidelity_pure(&sv) - 1.0).abs() < 1e-8);
        prop_assert!((dm.purity() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn channels_preserve_trace_and_bound_purity(
        ops in prop::collection::vec(op_strategy(N), 0..12),
        ch in channel_strategy(),
        target in 0usize..N,
    ) {
        let c = build(N, &ops);
        let mut dm = DensityMatrix::zero(N);
        dm.run(&c, &[]);
        dm.apply_kraus(&ch.kraus(), &[target]);
        prop_assert!((dm.trace() - 1.0).abs() < 1e-8, "trace {}", dm.trace());
        let p = dm.purity();
        let floor = 1.0 / (1 << N) as f64;
        prop_assert!(p <= 1.0 + 1e-8 && p >= floor - 1e-8, "purity {p}");
        // Probabilities form a distribution.
        let probs = dm.probabilities();
        prop_assert!(probs.iter().all(|&v| v >= -1e-9));
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn noise_never_increases_purity(
        ops in prop::collection::vec(op_strategy(N), 0..12),
        p in 0.0..0.5f64,
        target in 0usize..N,
    ) {
        let c = build(N, &ops);
        let mut dm = DensityMatrix::zero(N);
        dm.run(&c, &[]);
        let before = dm.purity();
        dm.apply_kraus(&Channel::Depolarizing(p).kraus(), &[target]);
        prop_assert!(dm.purity() <= before + 1e-9);
    }

    #[test]
    fn noisy_expectations_are_contracted_toward_zero(
        ops in prop::collection::vec(op_strategy(N), 0..10),
        q in 0usize..N,
    ) {
        use qmldb_sim::{NoiseModel, PauliString, PauliSum};
        let c = build(N, &ops);
        let h = PauliSum::from_terms(vec![(1.0, PauliString::z(q))]);
        let clean = Simulator::new().expectation(&c, &[], &h);
        let noisy = Simulator::with_noise(NoiseModel::depolarizing(0.1, 0.1))
            .expectation(&c, &[], &h);
        prop_assert!(noisy.abs() <= clean.abs() + 1e-8,
            "noise amplified <Z{q}>: {clean} -> {noisy}");
    }
}
