//! Equivalence properties of the circuit compiler: for arbitrary circuits
//! over the full gate alphabet — controls, shared/affine parameters, and
//! dense multi-qubit unitaries — the compiled kernel program must produce
//! the same state as the generic dense gate path
//! ([`StateVector::run_generic`]), and compilation must commute with
//! parameter substitution. Runs on the in-repo `check` harness.
//!
//! Fusion reorders floating-point products (HH → I, adjacent rotations →
//! one 2×2, diagonal runs → one pass), so comparisons use a tight
//! tolerance rather than bit equality; the bit-identical guarantee is
//! about thread counts (see `tests/parallel_determinism.rs` at the
//! workspace root), not about compiled-vs-generic.

use qmldb_math::{check, CMatrix, Rng64, C64};
use qmldb_sim::{Angle, Circuit, Gate, StateVector};

/// Picks a qubit distinct from the ones already `taken`.
fn distinct_qubit(rng: &mut Rng64, n: usize, taken: &[usize]) -> usize {
    loop {
        let q = rng.index(n);
        if !taken.contains(&q) {
            return q;
        }
    }
}

/// Up to `max` random control qubits disjoint from `taken`.
fn random_controls(rng: &mut Rng64, n: usize, taken: &mut Vec<usize>, max: usize) -> Vec<usize> {
    let mut controls = Vec::new();
    for _ in 0..max {
        if taken.len() < n && rng.chance(0.3) {
            let c = distinct_qubit(rng, n, taken);
            taken.push(c);
            controls.push(c);
        }
    }
    controls
}

/// A random angle: constant, or an affine map of one of `n_params`
/// parameters (exercising `mult`/`offset` resolution inside kernels).
fn random_angle(rng: &mut Rng64, n_params: usize) -> Angle {
    if n_params == 0 || rng.chance(0.5) {
        Angle::Const(rng.uniform_range(-3.2, 3.2))
    } else {
        Angle::Param {
            idx: rng.index(n_params),
            mult: rng.uniform_range(-2.0, 2.0),
            offset: rng.uniform_range(-1.0, 1.0),
        }
    }
}

/// A random `dim × dim` unitary built as a phased permutation:
/// `U e_j = e^{iφ_j} e_{π(j)}`. Unitary by construction and dense enough
/// to exercise the gather/scatter k-qubit kernel.
fn random_phased_permutation(rng: &mut Rng64, dim: usize) -> CMatrix {
    let mut perm: Vec<usize> = (0..dim).collect();
    rng.shuffle(&mut perm);
    let mut m = CMatrix::zeros(dim, dim);
    for (j, &pj) in perm.iter().enumerate() {
        m[(pj, j)] = C64::cis(rng.uniform_range(-3.0, 3.0));
    }
    m
}

/// Appends one random instruction drawn from every kernel class the
/// compiler emits: diagonal, flip, dense/rotation 1q, swap, dense/rotation
/// 2q, and generic k-qubit unitaries — each optionally controlled.
fn random_instr(c: &mut Circuit, n: usize, n_params: usize, rng: &mut Rng64) {
    let t = rng.index(n);
    let mut taken = vec![t];
    match rng.index(12) {
        // Constant 1q gates (feed single-qubit fusion).
        0 => {
            let gate = match rng.index(9) {
                0 => Gate::X,
                1 => Gate::Y,
                2 => Gate::Z,
                3 => Gate::H,
                4 => Gate::S,
                5 => Gate::Sdg,
                6 => Gate::T,
                7 => Gate::Tdg,
                _ => Gate::SX,
            };
            let controls = random_controls(rng, n, &mut taken, 2);
            c.push(gate, controls, vec![t]);
        }
        // Parameterized 1q rotations.
        1 | 2 => {
            let a = random_angle(rng, n_params);
            let gate = match rng.index(4) {
                0 => Gate::RX(a),
                1 => Gate::RY(a),
                2 => Gate::RZ(a),
                _ => Gate::P(a),
            };
            let controls = random_controls(rng, n, &mut taken, 2);
            c.push(gate, controls, vec![t]);
        }
        // U3 with three independent random angles.
        3 => {
            let gate = Gate::U3(
                random_angle(rng, n_params),
                random_angle(rng, n_params),
                random_angle(rng, n_params),
            );
            let controls = random_controls(rng, n, &mut taken, 1);
            c.push(gate, controls, vec![t]);
        }
        // Two-qubit interactions.
        4 | 5 => {
            let u = distinct_qubit(rng, n, &taken);
            taken.push(u);
            let a = random_angle(rng, n_params);
            let gate = match rng.index(3) {
                0 => Gate::RZZ(a),
                1 => Gate::RXX(a),
                _ => Gate::RYY(a),
            };
            let controls = random_controls(rng, n, &mut taken, 1);
            c.push(gate, controls, vec![t, u]);
        }
        // SWAP, optionally controlled (Fredkin).
        6 => {
            let u = distinct_qubit(rng, n, &taken);
            taken.push(u);
            let controls = random_controls(rng, n, &mut taken, 1);
            c.push(Gate::Swap, controls, vec![t, u]);
        }
        // Multi-controlled X / Z (flip and diagonal kernels with masks).
        7 => {
            let controls = {
                let mut ctl = vec![distinct_qubit(rng, n, &taken)];
                taken.push(ctl[0]);
                ctl.extend(random_controls(rng, n, &mut taken, 1));
                ctl
            };
            let gate = if rng.chance(0.5) { Gate::X } else { Gate::Z };
            c.push(gate, controls, vec![t]);
        }
        // Dense unitary on 1–3 qubits: the generic k-qubit kernel.
        8 => {
            let arity = 1 + rng.index(3.min(n));
            let mut targets = vec![t];
            while targets.len() < arity {
                let q = distinct_qubit(rng, n, &taken);
                taken.push(q);
                targets.push(q);
            }
            let mat = random_phased_permutation(rng, 1 << arity);
            let controls = random_controls(rng, n, &mut taken, 1);
            c.push(Gate::Unitary(mat), controls, targets);
        }
        // A burst of constant 1q gates on one qubit: exercises fusion,
        // identity elimination, and diagonal reclassification.
        9 => {
            for _ in 0..2 + rng.index(4) {
                let gate = match rng.index(4) {
                    0 => Gate::H,
                    1 => Gate::X,
                    2 => Gate::S,
                    _ => Gate::T,
                };
                c.push(gate, vec![], vec![t]);
            }
        }
        // A burst of diagonal gates across qubits: exercises diag-run
        // grouping into a single amplitude pass.
        10 => {
            for _ in 0..2 + rng.index(5) {
                let q = rng.index(n);
                match rng.index(4) {
                    0 => {
                        c.rz(q, random_angle(rng, n_params));
                    }
                    1 => {
                        let u = distinct_qubit(rng, n, &[q]);
                        c.rzz(q, u, random_angle(rng, n_params));
                    }
                    2 => {
                        let u = distinct_qubit(rng, n, &[q]);
                        c.cp(q, u, random_angle(rng, n_params));
                    }
                    _ => {
                        c.t(q);
                    }
                }
            }
        }
        // Identity gate: must be dropped by compilation.
        _ => {
            c.push(Gate::I, vec![], vec![t]);
        }
    }
}

/// A random circuit plus a matching random parameter vector.
fn random_circuit(n: usize, max_len: usize, rng: &mut Rng64) -> (Circuit, Vec<f64>) {
    let mut c = Circuit::new(n);
    let n_params = rng.index(4);
    c.new_params(n_params);
    let len = rng.index(max_len + 1);
    for _ in 0..len {
        random_instr(&mut c, n, n_params, rng);
    }
    let params = (0..n_params)
        .map(|_| rng.uniform_range(-3.0, 3.0))
        .collect();
    (c, params)
}

fn assert_states_close(a: &StateVector, b: &StateVector, tol: f64, what: &str) {
    assert_eq!(a.n_qubits(), b.n_qubits());
    for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
        assert!(
            x.approx_eq(*y, tol),
            "{what}: amplitude {i} differs: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn compiled_matches_generic_on_random_circuits() {
    check::cases("compiled_matches_generic_on_random_circuits", 96, |rng| {
        let n = 2 + rng.index(4); // 2–5 qubits
        let (c, params) = random_circuit(n, 30, rng);
        let start = rng.index(1 << n);
        let mut reference = StateVector::basis(n, start);
        reference.run_generic(&c, &params);
        let compiled = c.compile();
        let mut fast = StateVector::basis(n, start);
        compiled.run(&mut fast, &params);
        assert_states_close(&fast, &reference, 1e-10, "compiled vs generic");
    });
}

#[test]
fn statevector_run_agrees_with_generic_path() {
    // `StateVector::run` routes through compilation (from
    // COMPILE_MIN_QUBITS qubits up — sample at and above the cutoff so
    // the compiled route is actually exercised); it must stay
    // observationally identical to the documented reference semantics.
    check::cases("statevector_run_agrees_with_generic_path", 64, |rng| {
        let n = StateVector::COMPILE_MIN_QUBITS + rng.index(3);
        let (c, params) = random_circuit(n, 25, rng);
        let mut via_run = StateVector::zero(n);
        via_run.run(&c, &params);
        let mut reference = StateVector::zero(n);
        reference.run_generic(&c, &params);
        assert_states_close(&via_run, &reference, 1e-10, "run vs generic");
    });
}

#[test]
fn one_compilation_serves_many_parameter_vectors() {
    // Compile-once/run-many must equal compile-per-point: kernels resolve
    // parameters at run time, never bake them in.
    check::cases("one_compilation_serves_many_parameter_vectors", 32, |rng| {
        let n = 2 + rng.index(3);
        let (c, _) = random_circuit(n, 20, rng);
        let compiled = c.compile();
        for _ in 0..4 {
            let params: Vec<f64> = (0..c.n_params())
                .map(|_| rng.uniform_range(-3.0, 3.0))
                .collect();
            let mut reference = StateVector::zero(n);
            reference.run_generic(&c, &params);
            let reused = compiled.execute(&params);
            assert_states_close(&reused, &reference, 1e-10, "reused compilation");
        }
    });
}

#[test]
fn compiled_preserves_norm() {
    check::cases("compiled_preserves_norm", 64, |rng| {
        let n = 2 + rng.index(4);
        let (c, params) = random_circuit(n, 30, rng);
        let s = c.compile().execute(&params);
        assert!((s.norm() - 1.0).abs() < 1e-9);
    });
}

/// Appends gates that pin every specialized kernel path at kernel scale:
/// dense 1q on the top bit (pair-split + unrolled FMA loop), dense 2q with
/// both targets high (quad split), mixed high/low 2q (pair split with a
/// peeled low interleave), swaps and controlled forms across the split
/// boundary.
fn push_high_bit_gates(c: &mut Circuit, n: usize, rng: &mut Rng64) {
    let (top, next) = (n - 1, n - 2);
    c.ry(top, rng.uniform_range(-3.0, 3.0));
    c.u3(
        next,
        rng.uniform_range(-3.0, 3.0),
        rng.uniform_range(-1.0, 1.0),
        rng.uniform_range(-1.0, 1.0),
    );
    c.rxx(top, next, rng.uniform_range(-3.0, 3.0));
    c.push(
        Gate::RYY(Angle::Const(rng.uniform_range(-3.0, 3.0))),
        vec![],
        vec![rng.index(2), top],
    );
    c.swap(0, top).swap(next, top).cx(1, top).cx(top, 0);
    c.push(Gate::RX(Angle::Const(0.9)), vec![0], vec![top]);
    c.cswap(1, 2, top);
}

#[test]
fn blocked_2q_and_unrolled_1q_match_generic_at_kernel_scale() {
    // The dispatch constants (BLOCK = 256, PAR_MIN = 2¹⁴) only matter at
    // 14+ qubits — the sizes where the blocked 2q kernel, the unrolled 1q
    // FMA loop, and the pair/quad decompositions actually engage. Random
    // full-alphabet circuits are seasoned with forced top-bit gates so the
    // non-contiguous split paths are exercised every case, then compared
    // against the per-instruction generic reference.
    check::cases("blocked_2q_and_unrolled_1q_match_generic", 6, |rng| {
        let n = 14 + rng.index(2); // 2¹⁴–2¹⁵ amplitudes
        let (mut c, params) = random_circuit(n, 12, rng);
        push_high_bit_gates(&mut c, n, rng);
        let mut reference = StateVector::zero(n);
        reference.run_generic(&c, &params);
        let fast = c.compile().execute(&params);
        assert_states_close(&fast, &reference, 1e-10, "kernel-scale compiled");
    });
}

#[test]
fn intra_kernel_split_is_bit_identical_on_1_and_4_threads() {
    // The thread-count override is process-global; hold a lock so the
    // other property tests in this binary never observe a twiddled pool
    // width mid-case (their results would still be identical — this just
    // keeps the pinning honest).
    static THREAD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = THREAD_LOCK.lock().unwrap();

    let n = 14;
    let mut rng = Rng64::new(271);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    push_high_bit_gates(&mut c, n, &mut rng);
    for q in 0..n {
        c.rzz(q, (q + 1) % n, rng.uniform_range(-1.0, 1.0));
    }
    let compiled = c.compile();

    let run_with = |threads: usize| {
        qmldb_math::par::set_threads(threads);
        let s = compiled.execute(&[]);
        qmldb_math::par::reset_threads();
        s
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    // Bit-identical, not approximately equal: on one thread every kernel
    // takes the contiguous path, on four the top-bit gates go through the
    // intra-kernel pair/quad splits — and the shared per-pair arithmetic
    // must make that invisible.
    assert_eq!(serial, parallel);
}

#[test]
fn compiled_inverse_restores_initial_state() {
    // Compile both the circuit and its inverse independently; running one
    // after the other must return to the start basis state.
    check::cases("compiled_inverse_restores_initial_state", 48, |rng| {
        let n = 2 + rng.index(3);
        let (c, params) = random_circuit(n, 20, rng);
        let start = rng.index(1 << n);
        let mut s = StateVector::basis(n, start);
        c.compile().run(&mut s, &params);
        c.inverse().compile().run(&mut s, &params);
        assert!(
            s.fidelity(&StateVector::basis(n, start)) > 1.0 - 1e-9,
            "fidelity {}",
            s.fidelity(&StateVector::basis(n, start))
        );
    });
}
