//! Property-based tests: physical invariants the simulator must uphold for
//! arbitrary circuits.

use proptest::prelude::*;
use qmldb_sim::{optimize, Circuit, Pauli, PauliString, StateVector};

/// A random instruction spec we can replay onto a `Circuit`.
#[derive(Clone, Debug)]
enum Spec {
    H(usize),
    X(usize),
    T(usize),
    RX(usize, f64),
    RY(usize, f64),
    RZ(usize, f64),
    CX(usize, usize),
    CZ(usize, usize),
    RZZ(usize, usize, f64),
    CCX(usize, usize, usize),
}

fn spec_strategy(n: usize) -> impl Strategy<Value = Spec> {
    let q = 0..n;
    let ang = -3.2..3.2f64;
    prop_oneof![
        q.clone().prop_map(Spec::H),
        q.clone().prop_map(Spec::X),
        q.clone().prop_map(Spec::T),
        (0..n, ang.clone()).prop_map(|(a, t)| Spec::RX(a, t)),
        (0..n, ang.clone()).prop_map(|(a, t)| Spec::RY(a, t)),
        (0..n, ang.clone()).prop_map(|(a, t)| Spec::RZ(a, t)),
        (0..n, 0..n - 1).prop_map(|(a, b)| Spec::CX(a, if b >= a { b + 1 } else { b })),
        (0..n, 0..n - 1).prop_map(|(a, b)| Spec::CZ(a, if b >= a { b + 1 } else { b })),
        (0..n, 0..n - 1, ang).prop_map(|(a, b, t)| Spec::RZZ(a, if b >= a { b + 1 } else { b }, t)),
        (0..n, 0..n - 1, 0..n - 2).prop_map(|(a, b, c)| {
            let b = if b >= a { b + 1 } else { b };
            let mut c = c;
            for taken in {
                let mut v = [a, b];
                v.sort_unstable();
                v
            } {
                if c >= taken {
                    c += 1;
                }
            }
            Spec::CCX(a, b, c)
        }),
    ]
}

fn build(n: usize, specs: &[Spec]) -> Circuit {
    let mut c = Circuit::new(n);
    for s in specs {
        match *s {
            Spec::H(q) => c.h(q),
            Spec::X(q) => c.x(q),
            Spec::T(q) => c.t(q),
            Spec::RX(q, t) => c.rx(q, t),
            Spec::RY(q, t) => c.ry(q, t),
            Spec::RZ(q, t) => c.rz(q, t),
            Spec::CX(a, b) => c.cx(a, b),
            Spec::CZ(a, b) => c.cz(a, b),
            Spec::RZZ(a, b, t) => c.rzz(a, b, t),
            Spec::CCX(a, b, t) => c.ccx(a, b, t),
        };
    }
    c
}

const N: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn norm_is_preserved(specs in prop::collection::vec(spec_strategy(N), 0..40)) {
        let c = build(N, &specs);
        let mut s = StateVector::zero(N);
        s.run(&c, &[]);
        prop_assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn circuit_inverse_restores_initial_state(
        specs in prop::collection::vec(spec_strategy(N), 0..30),
        start in 0usize..(1 << N),
    ) {
        let c = build(N, &specs);
        let mut s = StateVector::basis(N, start);
        s.run(&c, &[]);
        s.run(&c.inverse(), &[]);
        prop_assert!(s.fidelity(&StateVector::basis(N, start)) > 1.0 - 1e-9);
    }

    #[test]
    fn optimizer_preserves_semantics(
        specs in prop::collection::vec(spec_strategy(N), 0..30),
        start in 0usize..(1 << N),
    ) {
        let orig = build(N, &specs);
        let mut opt = orig.clone();
        optimize::optimize(&mut opt);
        prop_assert!(opt.len() <= orig.len());
        let mut a = StateVector::basis(N, start);
        let mut b = StateVector::basis(N, start);
        a.run(&orig, &[]);
        b.run(&opt, &[]);
        prop_assert!(a.fidelity(&b) > 1.0 - 1e-9);
    }

    #[test]
    fn pauli_expectations_bounded(
        specs in prop::collection::vec(spec_strategy(N), 0..25),
        q in 0usize..N,
    ) {
        let c = build(N, &specs);
        let mut s = StateVector::zero(N);
        s.run(&c, &[]);
        for p in [PauliString::x(q), PauliString::y(q), PauliString::z(q)] {
            let e = p.expectation(&s);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e), "{p}: {e}");
        }
    }

    #[test]
    fn single_qubit_bloch_vector_length_at_most_one(
        specs in prop::collection::vec(spec_strategy(N), 0..25),
        q in 0usize..N,
    ) {
        let c = build(N, &specs);
        let mut s = StateVector::zero(N);
        s.run(&c, &[]);
        let x = PauliString::x(q).expectation(&s);
        let y = PauliString::y(q).expectation(&s);
        let z = PauliString::z(q).expectation(&s);
        prop_assert!(x * x + y * y + z * z <= 1.0 + 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one(specs in prop::collection::vec(spec_strategy(N), 0..30)) {
        let c = build(N, &specs);
        let mut s = StateVector::zero(N);
        s.run(&c, &[]);
        let total: f64 = s.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pauli_string_apply_twice_is_identity(
        specs in prop::collection::vec(spec_strategy(N), 0..20),
        mask in 1usize..(1 << N),
        kinds in prop::collection::vec(0u8..3, N),
    ) {
        let c = build(N, &specs);
        let mut s = StateVector::zero(N);
        s.run(&c, &[]);
        let ops: Vec<(usize, Pauli)> = (0..N)
            .filter(|q| mask & (1 << q) != 0)
            .map(|q| (q, match kinds[q] { 0 => Pauli::X, 1 => Pauli::Y, _ => Pauli::Z }))
            .collect();
        let p = PauliString::new(ops);
        let twice = p.apply(&p.apply(&s));
        prop_assert!(twice.fidelity(&s) > 1.0 - 1e-9);
    }
}
