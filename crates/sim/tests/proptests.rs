//! Property-based tests: physical invariants the simulator must uphold for
//! arbitrary circuits. Runs on the in-repo `check` harness.

use qmldb_math::{check, Rng64};
use qmldb_sim::{optimize, Circuit, Pauli, PauliString, StateVector};

const N: usize = 4;

/// Picks a qubit distinct from the ones already `taken`.
fn distinct_qubit(rng: &mut Rng64, n: usize, taken: &[usize]) -> usize {
    loop {
        let q = rng.index(n);
        if !taken.contains(&q) {
            return q;
        }
    }
}

/// Appends one random instruction drawn from the full gate alphabet.
fn random_instr(c: &mut Circuit, n: usize, rng: &mut Rng64) {
    let ang = rng.uniform_range(-3.2, 3.2);
    match rng.index(10) {
        0 => c.h(rng.index(n)),
        1 => c.x(rng.index(n)),
        2 => c.t(rng.index(n)),
        3 => c.rx(rng.index(n), ang),
        4 => c.ry(rng.index(n), ang),
        5 => c.rz(rng.index(n), ang),
        6 => {
            let a = rng.index(n);
            c.cx(a, distinct_qubit(rng, n, &[a]))
        }
        7 => {
            let a = rng.index(n);
            c.cz(a, distinct_qubit(rng, n, &[a]))
        }
        8 => {
            let a = rng.index(n);
            let b = distinct_qubit(rng, n, &[a]);
            c.rzz(a, b, ang)
        }
        _ => {
            let a = rng.index(n);
            let b = distinct_qubit(rng, n, &[a]);
            let t = distinct_qubit(rng, n, &[a, b]);
            c.ccx(a, b, t)
        }
    };
}

/// A random circuit with up to `max_len` instructions.
fn random_circuit(n: usize, max_len: usize, rng: &mut Rng64) -> Circuit {
    let mut c = Circuit::new(n);
    let len = rng.index(max_len + 1);
    for _ in 0..len {
        random_instr(&mut c, n, rng);
    }
    c
}

#[test]
fn norm_is_preserved() {
    check::cases("norm_is_preserved", 64, |rng| {
        let c = random_circuit(N, 40, rng);
        let mut s = StateVector::zero(N);
        s.run(&c, &[]);
        assert!((s.norm() - 1.0).abs() < 1e-9);
    });
}

#[test]
fn circuit_inverse_restores_initial_state() {
    check::cases("circuit_inverse_restores_initial_state", 64, |rng| {
        let c = random_circuit(N, 30, rng);
        let start = rng.index(1 << N);
        let mut s = StateVector::basis(N, start);
        s.run(&c, &[]);
        s.run(&c.inverse(), &[]);
        assert!(s.fidelity(&StateVector::basis(N, start)) > 1.0 - 1e-9);
    });
}

#[test]
fn optimizer_preserves_semantics() {
    check::cases("optimizer_preserves_semantics", 64, |rng| {
        let orig = random_circuit(N, 30, rng);
        let start = rng.index(1 << N);
        let mut opt = orig.clone();
        optimize::optimize(&mut opt);
        assert!(opt.len() <= orig.len());
        let mut a = StateVector::basis(N, start);
        let mut b = StateVector::basis(N, start);
        a.run(&orig, &[]);
        b.run(&opt, &[]);
        assert!(a.fidelity(&b) > 1.0 - 1e-9);
    });
}

#[test]
fn pauli_expectations_bounded() {
    check::cases("pauli_expectations_bounded", 64, |rng| {
        let c = random_circuit(N, 25, rng);
        let q = rng.index(N);
        let mut s = StateVector::zero(N);
        s.run(&c, &[]);
        for p in [PauliString::x(q), PauliString::y(q), PauliString::z(q)] {
            let e = p.expectation(&s);
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e), "{p}: {e}");
        }
    });
}

#[test]
fn single_qubit_bloch_vector_length_at_most_one() {
    check::cases("single_qubit_bloch_vector_length_at_most_one", 64, |rng| {
        let c = random_circuit(N, 25, rng);
        let q = rng.index(N);
        let mut s = StateVector::zero(N);
        s.run(&c, &[]);
        let x = PauliString::x(q).expectation(&s);
        let y = PauliString::y(q).expectation(&s);
        let z = PauliString::z(q).expectation(&s);
        assert!(x * x + y * y + z * z <= 1.0 + 1e-9);
    });
}

#[test]
fn probabilities_sum_to_one() {
    check::cases("probabilities_sum_to_one", 64, |rng| {
        let c = random_circuit(N, 30, rng);
        let mut s = StateVector::zero(N);
        s.run(&c, &[]);
        let total: f64 = s.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    });
}

#[test]
fn pauli_string_apply_twice_is_identity() {
    check::cases("pauli_string_apply_twice_is_identity", 64, |rng| {
        let c = random_circuit(N, 20, rng);
        let mask = 1 + rng.index((1 << N) - 1);
        let mut s = StateVector::zero(N);
        s.run(&c, &[]);
        let ops: Vec<(usize, Pauli)> = (0..N)
            .filter(|q| mask & (1 << q) != 0)
            .map(|q| {
                let p = match rng.index(3) {
                    0 => Pauli::X,
                    1 => Pauli::Y,
                    _ => Pauli::Z,
                };
                (q, p)
            })
            .collect();
        let p = PauliString::new(ops);
        let twice = p.apply(&p.apply(&s));
        assert!(twice.fidelity(&s) > 1.0 - 1e-9);
    });
}
