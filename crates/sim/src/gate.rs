//! Gate library.
//!
//! A [`Gate`] names a unitary on one or more *target* qubits; controls are
//! attached at the instruction level (see [`crate::circuit::Instr`]), so
//! `CX` is simply `Gate::X` with one control and a Toffoli is `Gate::X`
//! with two. Rotation angles are [`Angle`]s — either constants or affine
//! functions of a circuit parameter, which is what makes parameter-shift
//! differentiation and circuit inversion exact and mechanical.

use qmldb_math::{CMatrix, C64};

/// An angle appearing in a rotation gate: either a constant or the affine
/// form `mult · θ[idx] + offset` over the circuit's parameter vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Angle {
    /// A fixed angle in radians.
    Const(f64),
    /// `mult * params[idx] + offset`.
    Param {
        /// Index into the circuit's parameter vector.
        idx: usize,
        /// Multiplier applied to the parameter.
        mult: f64,
        /// Constant offset added after scaling (used by parameter-shift).
        offset: f64,
    },
}

impl Angle {
    /// References parameter `idx` directly (`θ[idx]`).
    pub fn param(idx: usize) -> Angle {
        Angle::Param {
            idx,
            mult: 1.0,
            offset: 0.0,
        }
    }

    /// Resolves the angle against a parameter vector.
    ///
    /// # Panics
    /// Panics if the angle references a parameter beyond `params.len()`.
    pub fn resolve(self, params: &[f64]) -> f64 {
        match self {
            Angle::Const(v) => v,
            Angle::Param { idx, mult, offset } => mult * params[idx] + offset,
        }
    }

    /// The negated angle (used when inverting circuits).
    pub fn neg(self) -> Angle {
        match self {
            Angle::Const(v) => Angle::Const(-v),
            Angle::Param { idx, mult, offset } => Angle::Param {
                idx,
                mult: -mult,
                offset: -offset,
            },
        }
    }

    /// The angle shifted by a constant (used by the parameter-shift rule).
    pub fn shifted(self, delta: f64) -> Angle {
        match self {
            Angle::Const(v) => Angle::Const(v + delta),
            Angle::Param { idx, mult, offset } => Angle::Param {
                idx,
                mult,
                offset: offset + delta,
            },
        }
    }

    /// The parameter index this angle depends on, if any.
    pub fn param_idx(self) -> Option<usize> {
        match self {
            Angle::Const(_) => None,
            Angle::Param { idx, .. } => Some(idx),
        }
    }
}

impl From<f64> for Angle {
    fn from(v: f64) -> Angle {
        Angle::Const(v)
    }
}

/// A quantum gate acting on one or two target qubits.
///
/// The gate's unitary is produced by [`Gate::matrix`]; controlled versions
/// are handled uniformly by the simulator, not by enlarging the matrix.
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Identity (useful as a scheduling placeholder).
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// S†.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T†.
    Tdg,
    /// √X.
    SX,
    /// Rotation about X by the angle.
    RX(Angle),
    /// Rotation about Y by the angle.
    RY(Angle),
    /// Rotation about Z by the angle.
    RZ(Angle),
    /// Phase gate diag(1, e^{iφ}).
    P(Angle),
    /// General single-qubit rotation U3(θ, φ, λ).
    U3(Angle, Angle, Angle),
    /// Two-qubit SWAP.
    Swap,
    /// Two-qubit ZZ interaction e^{-iθ/2·Z⊗Z}.
    RZZ(Angle),
    /// Two-qubit XX interaction e^{-iθ/2·X⊗X}.
    RXX(Angle),
    /// Two-qubit YY interaction e^{-iθ/2·Y⊗Y}.
    RYY(Angle),
    /// An arbitrary unitary on `log2(dim)` target qubits (e.g. `e^{iAt}`
    /// blocks in phase estimation). Must be unitary; checked on use in
    /// debug builds.
    Unitary(CMatrix),
}

impl Gate {
    /// Number of target qubits the gate acts on.
    pub fn arity(&self) -> usize {
        match self {
            Gate::Swap | Gate::RZZ(_) | Gate::RXX(_) | Gate::RYY(_) => 2,
            Gate::Unitary(u) => {
                let n = u.rows();
                debug_assert!(n.is_power_of_two());
                n.trailing_zeros() as usize
            }
            _ => 1,
        }
    }

    /// The unitary matrix of the gate with angles resolved against
    /// `params`.
    pub fn matrix(&self, params: &[f64]) -> CMatrix {
        let z = C64::ZERO;
        let o = C64::ONE;
        let i = C64::I;
        match self {
            Gate::I => CMatrix::identity(2),
            Gate::X => CMatrix::from_rows(&[vec![z, o], vec![o, z]]),
            Gate::Y => CMatrix::from_rows(&[vec![z, -i], vec![i, z]]),
            Gate::Z => CMatrix::from_rows(&[vec![o, z], vec![z, -o]]),
            Gate::H => {
                let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
                CMatrix::from_rows(&[vec![s, s], vec![s, -s]])
            }
            Gate::S => CMatrix::from_rows(&[vec![o, z], vec![z, i]]),
            Gate::Sdg => CMatrix::from_rows(&[vec![o, z], vec![z, -i]]),
            Gate::T => {
                CMatrix::from_rows(&[vec![o, z], vec![z, C64::cis(std::f64::consts::FRAC_PI_4)]])
            }
            Gate::Tdg => {
                CMatrix::from_rows(&[vec![o, z], vec![z, C64::cis(-std::f64::consts::FRAC_PI_4)]])
            }
            Gate::SX => {
                let a = C64::new(0.5, 0.5);
                let b = C64::new(0.5, -0.5);
                CMatrix::from_rows(&[vec![a, b], vec![b, a]])
            }
            Gate::RX(t) => {
                let th = t.resolve(params) / 2.0;
                let (c, s) = (C64::real(th.cos()), C64::new(0.0, -th.sin()));
                CMatrix::from_rows(&[vec![c, s], vec![s, c]])
            }
            Gate::RY(t) => {
                let th = t.resolve(params) / 2.0;
                let (c, s) = (C64::real(th.cos()), C64::real(th.sin()));
                CMatrix::from_rows(&[vec![c, -s], vec![s, c]])
            }
            Gate::RZ(t) => {
                let th = t.resolve(params) / 2.0;
                CMatrix::from_rows(&[vec![C64::cis(-th), z], vec![z, C64::cis(th)]])
            }
            Gate::P(t) => {
                let phi = t.resolve(params);
                CMatrix::from_rows(&[vec![o, z], vec![z, C64::cis(phi)]])
            }
            Gate::U3(theta, phi, lam) => {
                let th = theta.resolve(params) / 2.0;
                let (ph, lm) = (phi.resolve(params), lam.resolve(params));
                CMatrix::from_rows(&[
                    vec![C64::real(th.cos()), -(C64::cis(lm) * th.sin())],
                    vec![C64::cis(ph) * th.sin(), C64::cis(ph + lm) * th.cos()],
                ])
            }
            Gate::Swap => CMatrix::from_rows(&[
                vec![o, z, z, z],
                vec![z, z, o, z],
                vec![z, o, z, z],
                vec![z, z, z, o],
            ]),
            Gate::RZZ(t) => {
                let th = t.resolve(params) / 2.0;
                let (p, m) = (C64::cis(th), C64::cis(-th));
                let mut u = CMatrix::zeros(4, 4);
                u[(0, 0)] = m;
                u[(1, 1)] = p;
                u[(2, 2)] = p;
                u[(3, 3)] = m;
                u
            }
            Gate::RXX(t) => {
                let th = t.resolve(params) / 2.0;
                let (c, s) = (C64::real(th.cos()), C64::new(0.0, -th.sin()));
                let mut u = CMatrix::zeros(4, 4);
                for d in 0..4 {
                    u[(d, d)] = c;
                }
                u[(0, 3)] = s;
                u[(3, 0)] = s;
                u[(1, 2)] = s;
                u[(2, 1)] = s;
                u
            }
            Gate::RYY(t) => {
                let th = t.resolve(params) / 2.0;
                let (c, s) = (C64::real(th.cos()), C64::new(0.0, th.sin()));
                let mut u = CMatrix::zeros(4, 4);
                for d in 0..4 {
                    u[(d, d)] = c;
                }
                u[(0, 3)] = s;
                u[(3, 0)] = s;
                u[(1, 2)] = -s;
                u[(2, 1)] = -s;
                u
            }
            Gate::Unitary(u) => u.clone(),
        }
    }

    /// The inverse gate (dagger). Parameterized rotations negate their
    /// angle so inversion works symbolically for variational circuits.
    pub fn dagger(&self) -> Gate {
        match self {
            Gate::I => Gate::I,
            Gate::X => Gate::X,
            Gate::Y => Gate::Y,
            Gate::Z => Gate::Z,
            Gate::H => Gate::H,
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::SX => Gate::Unitary(Gate::SX.matrix(&[]).dagger()),
            Gate::RX(t) => Gate::RX(t.neg()),
            Gate::RY(t) => Gate::RY(t.neg()),
            Gate::RZ(t) => Gate::RZ(t.neg()),
            Gate::P(t) => Gate::P(t.neg()),
            Gate::U3(th, ph, lm) => Gate::U3(th.neg(), lm.neg(), ph.neg()),
            Gate::Swap => Gate::Swap,
            Gate::RZZ(t) => Gate::RZZ(t.neg()),
            Gate::RXX(t) => Gate::RXX(t.neg()),
            Gate::RYY(t) => Gate::RYY(t.neg()),
            Gate::Unitary(u) => Gate::Unitary(u.dagger()),
        }
    }

    /// True when `self` composed with `other` is the identity for all
    /// parameter values (used by the peephole optimizer). Conservative:
    /// may return false for pairs that do cancel.
    pub fn cancels_with(&self, other: &Gate) -> bool {
        match (self, other) {
            (Gate::X, Gate::X)
            | (Gate::Y, Gate::Y)
            | (Gate::Z, Gate::Z)
            | (Gate::H, Gate::H)
            | (Gate::Swap, Gate::Swap)
            | (Gate::S, Gate::Sdg)
            | (Gate::Sdg, Gate::S)
            | (Gate::T, Gate::Tdg)
            | (Gate::Tdg, Gate::T) => true,
            (Gate::RX(Angle::Const(a)), Gate::RX(Angle::Const(b)))
            | (Gate::RY(Angle::Const(a)), Gate::RY(Angle::Const(b)))
            | (Gate::RZ(Angle::Const(a)), Gate::RZ(Angle::Const(b)))
            | (Gate::P(Angle::Const(a)), Gate::P(Angle::Const(b))) => (a + b).abs() < 1e-15,
            _ => false,
        }
    }

    /// The angles appearing in this gate.
    pub fn angles(&self) -> Vec<Angle> {
        match self {
            Gate::RX(t)
            | Gate::RY(t)
            | Gate::RZ(t)
            | Gate::P(t)
            | Gate::RZZ(t)
            | Gate::RXX(t)
            | Gate::RYY(t) => vec![*t],
            Gate::U3(a, b, c) => vec![*a, *b, *c],
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn all_fixed_gates_are_unitary() {
        for g in [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::SX,
            Gate::Swap,
        ] {
            assert!(g.matrix(&[]).is_unitary(1e-12), "{g:?} not unitary");
        }
    }

    #[test]
    fn rotations_are_unitary_for_various_angles() {
        for k in 0..8 {
            let t = Angle::Const(k as f64 * 0.9 - 3.0);
            for g in [
                Gate::RX(t),
                Gate::RY(t),
                Gate::RZ(t),
                Gate::P(t),
                Gate::RZZ(t),
                Gate::RXX(t),
                Gate::RYY(t),
            ] {
                assert!(g.matrix(&[]).is_unitary(1e-12), "{g:?} not unitary");
            }
        }
    }

    #[test]
    fn rx_pi_equals_minus_i_x() {
        let rx = Gate::RX(Angle::Const(PI)).matrix(&[]);
        let x = Gate::X.matrix(&[]).scale(C64::new(0.0, -1.0));
        assert!(rx.approx_eq(&x, 1e-12));
    }

    #[test]
    fn u3_reduces_to_known_gates() {
        // U3(π/2, 0, π) = H.
        let u = Gate::U3(Angle::Const(PI / 2.0), Angle::Const(0.0), Angle::Const(PI)).matrix(&[]);
        assert!(u.approx_eq(&Gate::H.matrix(&[]), 1e-12));
    }

    #[test]
    fn dagger_gives_inverse_matrix() {
        let gates = [
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::SX,
            Gate::RX(Angle::Const(0.7)),
            Gate::RY(Angle::Const(-1.3)),
            Gate::U3(Angle::Const(0.3), Angle::Const(0.4), Angle::Const(0.5)),
            Gate::RZZ(Angle::Const(0.9)),
        ];
        for g in gates {
            let u = g.matrix(&[]);
            let udg = g.dagger().matrix(&[]);
            let prod = u.matmul(&udg);
            assert!(
                prod.approx_eq(&CMatrix::identity(u.rows()), 1e-12),
                "{g:?} dagger is not inverse"
            );
        }
    }

    #[test]
    fn angle_resolution_and_shift() {
        let a = Angle::param(1);
        assert_eq!(a.resolve(&[9.0, 2.5]), 2.5);
        assert_eq!(a.shifted(0.5).resolve(&[9.0, 2.5]), 3.0);
        assert_eq!(a.neg().resolve(&[9.0, 2.5]), -2.5);
        assert_eq!(Angle::Const(1.0).shifted(-0.25).resolve(&[]), 0.75);
    }

    #[test]
    fn parameterized_rotation_uses_param_vector() {
        let g = Gate::RY(Angle::param(0));
        let m1 = g.matrix(&[PI]);
        let m2 = Gate::RY(Angle::Const(PI)).matrix(&[]);
        assert!(m1.approx_eq(&m2, 1e-12));
    }

    #[test]
    fn cancellation_detection() {
        assert!(Gate::H.cancels_with(&Gate::H));
        assert!(Gate::S.cancels_with(&Gate::Sdg));
        assert!(!Gate::S.cancels_with(&Gate::S));
        assert!(Gate::RX(Angle::Const(0.4)).cancels_with(&Gate::RX(Angle::Const(-0.4))));
        assert!(!Gate::RX(Angle::param(0)).cancels_with(&Gate::RX(Angle::param(0))));
    }

    #[test]
    fn arity_reports_targets() {
        assert_eq!(Gate::H.arity(), 1);
        assert_eq!(Gate::Swap.arity(), 2);
        assert_eq!(Gate::Unitary(CMatrix::identity(8)).arity(), 3);
    }

    #[test]
    fn rzz_is_diagonal_with_correct_phases() {
        let th = 0.8;
        let u = Gate::RZZ(Angle::Const(th)).matrix(&[]);
        assert!(u[(0, 0)].approx_eq(C64::cis(-th / 2.0), 1e-12));
        assert!(u[(1, 1)].approx_eq(C64::cis(th / 2.0), 1e-12));
        assert!(u[(2, 2)].approx_eq(C64::cis(th / 2.0), 1e-12));
        assert!(u[(3, 3)].approx_eq(C64::cis(-th / 2.0), 1e-12));
    }
}
