//! Plain-text circuit rendering.
//!
//! `circuit.render()` draws the familiar one-wire-per-qubit diagram:
//!
//! ```text
//! q0: ─H─●─────
//! q1: ───X─RY──
//! ```
//!
//! The renderer is column-per-instruction (no compaction), which keeps the
//! output unambiguous for debugging and doc examples.

use crate::circuit::Circuit;
use crate::gate::{Angle, Gate};

fn gate_label(gate: &Gate) -> String {
    let angle = |a: &Angle| match a {
        Angle::Const(v) => format!("{v:.2}"),
        Angle::Param { idx, mult, offset } => {
            if *mult == 1.0 && *offset == 0.0 {
                format!("θ{idx}")
            } else {
                format!("{mult:.1}·θ{idx}{offset:+.1}")
            }
        }
    };
    match gate {
        Gate::I => "I".into(),
        Gate::X => "X".into(),
        Gate::Y => "Y".into(),
        Gate::Z => "Z".into(),
        Gate::H => "H".into(),
        Gate::S => "S".into(),
        Gate::Sdg => "S†".into(),
        Gate::T => "T".into(),
        Gate::Tdg => "T†".into(),
        Gate::SX => "√X".into(),
        Gate::RX(a) => format!("RX({})", angle(a)),
        Gate::RY(a) => format!("RY({})", angle(a)),
        Gate::RZ(a) => format!("RZ({})", angle(a)),
        Gate::P(a) => format!("P({})", angle(a)),
        Gate::U3(t, p, l) => format!("U3({},{},{})", angle(t), angle(p), angle(l)),
        Gate::Swap => "×".into(),
        Gate::RZZ(a) => format!("ZZ({})", angle(a)),
        Gate::RXX(a) => format!("XX({})", angle(a)),
        Gate::RYY(a) => format!("YY({})", angle(a)),
        Gate::Unitary(u) => format!("U[{}]", u.rows()),
    }
}

impl Circuit {
    /// Renders the circuit as a text diagram, one row per qubit.
    pub fn render(&self) -> String {
        let n = self.n_qubits();
        let mut rows: Vec<String> = (0..n).map(|q| format!("q{q}: ─")).collect();
        // Pad row prefixes to equal width.
        let prefix_w = rows.iter().map(String::len).max().unwrap_or(0);
        for row in &mut rows {
            while row.chars().count() < prefix_w {
                row.insert(4, ' ');
            }
        }
        for instr in self.instrs() {
            let label = gate_label(&instr.gate);
            // Column width: label + 1 dash padding.
            let width = label.chars().count().max(1) + 1;
            for q in 0..n {
                let cell = if instr.controls.contains(&q) {
                    "●".to_string()
                } else if instr.targets.contains(&q) {
                    if instr.targets.len() > 1 && matches!(instr.gate, Gate::Swap) {
                        "×".to_string()
                    } else if instr.targets.len() > 1 {
                        // Multi-target gate: label on the first target,
                        // box marker on the rest.
                        if instr.targets[0] == q {
                            label.clone()
                        } else {
                            "□".to_string()
                        }
                    } else {
                        label.clone()
                    }
                } else {
                    String::new()
                };
                let used = cell.chars().count();
                rows[q].push_str(&cell);
                for _ in used..width {
                    rows[q].push('─');
                }
            }
        }
        rows.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_single_qubit_gates() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let s = c.render();
        assert!(s.contains("q0:"));
        assert!(s.contains('H'));
        assert!(s.contains('T'));
    }

    #[test]
    fn renders_controls_and_targets() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains('●'));
        assert!(lines[1].contains('X'));
    }

    #[test]
    fn renders_parameterized_rotations() {
        let mut c = Circuit::new(1);
        let p = c.new_param();
        c.ry(0, p);
        assert!(c.render().contains("RY(θ0)"));
    }

    #[test]
    fn renders_swap_on_both_wires() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let s = c.render();
        let count = s.matches('×').count();
        assert_eq!(count, 2);
    }

    #[test]
    fn row_count_matches_qubits() {
        let mut c = Circuit::new(4);
        c.h(0).ccx(0, 1, 2).rzz(2, 3, 0.5);
        assert_eq!(c.render().lines().count(), 4);
    }
}
