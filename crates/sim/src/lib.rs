//! Gate-model quantum circuit simulator.
//!
//! This crate is the "hardware" substrate of the workspace: a state-vector
//! engine for exact pure-state simulation, a density-matrix engine with
//! Kraus-channel noise for NISQ studies, a parameterizable circuit IR, a
//! Pauli-observable layer, and a peephole circuit optimizer.
//!
//! # Quick start
//! ```
//! use qmldb_sim::{Circuit, Simulator};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let state = Simulator::new().run(&bell, &[]);
//! let p = state.probabilities();
//! assert!((p[0b00] - 0.5).abs() < 1e-12);
//! assert!((p[0b11] - 0.5).abs() < 1e-12);
//! ```

pub mod adjoint;
pub mod circuit;
pub mod compile;
pub mod density;
pub mod display;
pub mod exec;
pub mod gate;
pub mod noise;
pub mod optimize;
pub mod pauli;
pub mod statevector;

pub use adjoint::AdjointGradient;
pub use circuit::{Circuit, Instr};
pub use compile::CompiledCircuit;
pub use density::DensityMatrix;
pub use exec::Simulator;
pub use gate::{Angle, Gate};
pub use noise::{Channel, NoiseModel};
pub use pauli::{Pauli, PauliString, PauliSum};
pub use statevector::StateVector;
