//! Pauli-string observables.
//!
//! Observables are represented as real-weighted sums of tensor products of
//! Pauli operators — the form every variational algorithm (VQE, QAOA,
//! variational classifiers) consumes.

use crate::statevector::StateVector;
use qmldb_math::C64;
use std::collections::BTreeMap;
use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pauli {
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// A tensor product of Pauli operators on specific qubits (identity
/// elsewhere). Stored sparsely and kept sorted by qubit.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PauliString {
    ops: Vec<(usize, Pauli)>,
}

impl PauliString {
    /// The identity string.
    pub fn identity() -> Self {
        PauliString { ops: Vec::new() }
    }

    /// Builds a string from `(qubit, pauli)` pairs.
    ///
    /// # Panics
    /// Panics if a qubit appears twice.
    pub fn new(mut ops: Vec<(usize, Pauli)>) -> Self {
        ops.sort_by_key(|&(q, _)| q);
        for w in ops.windows(2) {
            assert_ne!(w[0].0, w[1].0, "qubit {} appears twice", w[0].0);
        }
        PauliString { ops }
    }

    /// Single Z on `q`.
    pub fn z(q: usize) -> Self {
        PauliString::new(vec![(q, Pauli::Z)])
    }

    /// Single X on `q`.
    pub fn x(q: usize) -> Self {
        PauliString::new(vec![(q, Pauli::X)])
    }

    /// Single Y on `q`.
    pub fn y(q: usize) -> Self {
        PauliString::new(vec![(q, Pauli::Y)])
    }

    /// `Z⊗Z` on a pair.
    pub fn zz(a: usize, b: usize) -> Self {
        PauliString::new(vec![(a, Pauli::Z), (b, Pauli::Z)])
    }

    /// The `(qubit, pauli)` factors, sorted by qubit.
    pub fn ops(&self) -> &[(usize, Pauli)] {
        &self.ops
    }

    /// True for the identity string.
    pub fn is_identity(&self) -> bool {
        self.ops.is_empty()
    }

    /// True when every factor is Z (diagonal in the computational basis).
    pub fn is_diagonal(&self) -> bool {
        self.ops.iter().all(|&(_, p)| p == Pauli::Z)
    }

    /// Largest qubit index referenced, if any.
    pub fn max_qubit(&self) -> Option<usize> {
        self.ops.last().map(|&(q, _)| q)
    }

    /// The bit masks that characterize the string's action: `(flip,
    /// pmask, global)`. `P|j⟩ = global · (−1)^popcount(j & pmask) ·
    /// |j ^ flip⟩`, where `flip` collects X/Y qubits, `pmask` collects
    /// Y/Z qubits, and `global = i^{#Y}`. Shared with the adjoint
    /// gradient engine, which brackets rotation generators through the
    /// same action formula.
    pub(crate) fn masks(&self) -> (usize, usize, C64) {
        let (mut flip, mut pmask, mut n_y) = (0usize, 0usize, 0u32);
        for &(q, p) in &self.ops {
            match p {
                Pauli::X => flip |= 1 << q,
                Pauli::Y => {
                    flip |= 1 << q;
                    pmask |= 1 << q;
                    n_y += 1;
                }
                Pauli::Z => pmask |= 1 << q,
            }
        }
        let global = match n_y % 4 {
            0 => C64::ONE,
            1 => C64::I,
            2 => -C64::ONE,
            _ => -C64::I,
        };
        (flip, pmask, global)
    }

    /// Applies the string to `state` in place: `|ψ⟩ ← P|ψ⟩`.
    ///
    /// Pure phase strings (Z-only) take one sign pass; strings with X/Y
    /// factors exchange amplitude pairs `(i, i ^ flip)` by bit-stride
    /// iteration — no temporary state and no per-amplitude factor loop
    /// (phases come from one popcount against precomputed masks).
    pub fn apply_inplace(&self, state: &mut StateVector) {
        debug_assert!(self.max_qubit().is_none_or(|q| q < state.n_qubits()));
        let (flip, pmask, global) = self.masks();
        let sign = |x: usize| 1.0 - 2.0 * ((x & pmask).count_ones() & 1) as f64;
        let amps = state.amplitudes_mut();
        if flip == 0 {
            for (i, a) in amps.iter_mut().enumerate() {
                *a *= global.scale(sign(i));
            }
            return;
        }
        // Visit each pair {i, i^flip} once from the side where the top
        // flip bit is clear: blocks of 2·hbit, then hbit contiguous pairs.
        let hbit = 1usize << (usize::BITS - 1 - flip.leading_zeros());
        let mut base = 0usize;
        while base < amps.len() {
            for k in base..base + hbit {
                let j = k ^ flip;
                let t = amps[k];
                amps[k] = global.scale(sign(j)) * amps[j];
                amps[j] = global.scale(sign(k)) * t;
            }
            base += 2 * hbit;
        }
    }

    /// Applies the string to a copy of `state` and returns `P|ψ⟩`.
    pub fn apply(&self, state: &StateVector) -> StateVector {
        let mut out = state.clone();
        self.apply_inplace(&mut out);
        out
    }

    /// ⟨ψ|P|ψ⟩ — guaranteed real for Hermitian P; the imaginary residue is
    /// discarded. Computed as a direct sum over amplitudes; no temporary
    /// state is allocated.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        if self.is_identity() {
            return 1.0;
        }
        let (flip, pmask, global) = self.masks();
        let amps = state.amplitudes();
        if flip == 0 {
            // Diagonal fast path: sum of ±|amp|².
            return amps
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    let sign = 1.0 - 2.0 * ((i & pmask).count_ones() & 1) as f64;
                    sign * a.norm_sqr()
                })
                .sum();
        }
        // ⟨ψ|P|ψ⟩ = Σᵢ ψ̄ᵢ · phase(i^flip) · ψ_{i^flip}.
        let mut acc = C64::ZERO;
        for (i, a) in amps.iter().enumerate() {
            let j = i ^ flip;
            let sign = 1.0 - 2.0 * ((j & pmask).count_ones() & 1) as f64;
            acc += a.conj() * amps[j].scale(sign);
        }
        (acc * global).re
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ops.is_empty() {
            return write!(f, "I");
        }
        for (i, &(q, p)) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{p:?}{q}")?;
        }
        Ok(())
    }
}

/// A real-weighted sum of Pauli strings: `H = Σ cᵢ Pᵢ`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PauliSum {
    terms: Vec<(f64, PauliString)>,
}

impl PauliSum {
    /// The zero observable.
    pub fn new() -> Self {
        PauliSum::default()
    }

    /// Builds from raw terms, merging duplicates.
    pub fn from_terms(terms: Vec<(f64, PauliString)>) -> Self {
        let mut merged: BTreeMap<Vec<(usize, Pauli)>, f64> = BTreeMap::new();
        for (c, p) in terms {
            *merged.entry(p.ops().to_vec()).or_insert(0.0) += c;
        }
        PauliSum {
            terms: merged
                .into_iter()
                .filter(|&(_, c)| c != 0.0)
                .map(|(ops, c)| (c, PauliString { ops }))
                .collect(),
        }
    }

    /// Adds a term (no merging; use [`PauliSum::from_terms`] for that).
    pub fn push(&mut self, coeff: f64, string: PauliString) -> &mut Self {
        self.terms.push((coeff, string));
        self
    }

    /// The `(coefficient, string)` terms.
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when there are no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// ⟨ψ|H|ψ⟩.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        self.terms
            .iter()
            .map(|(c, p)| c * p.expectation(state))
            .sum()
    }

    /// `H|ψ⟩` — the observable applied to a state.
    ///
    /// The result is generally **not** normalized: `H` is Hermitian, not
    /// unitary. It is the co-state `λ` that adjoint differentiation
    /// back-propagates through the inverse circuit (`crate::adjoint`);
    /// use [`PauliSum::expectation`] when only `⟨ψ|H|ψ⟩` is needed.
    /// Terms accumulate serially in storage order, so the result is
    /// reproducible bit for bit.
    pub fn apply_to(&self, state: &StateVector) -> StateVector {
        let mut out = state.clone();
        out.amplitudes_mut().fill(C64::ZERO);
        let src = state.amplitudes();
        for (c, p) in &self.terms {
            // (Pψ)ᵢ = global · (−1)^popcount((i^flip) & pmask) · ψ_{i^flip};
            // accumulating via the masks avoids a temporary state per term.
            let (flip, pmask, global) = p.masks();
            let w = global.scale(*c);
            for (i, d) in out.amplitudes_mut().iter_mut().enumerate() {
                let j = i ^ flip;
                let sign = 1.0 - 2.0 * ((j & pmask).count_ones() & 1) as f64;
                *d += (w * src[j]).scale(sign);
            }
        }
        out
    }

    /// True when every term is diagonal (Z/identity only).
    pub fn is_diagonal(&self) -> bool {
        self.terms.iter().all(|(_, p)| p.is_diagonal())
    }

    /// For a diagonal observable, the classical energy of basis state
    /// `index`.
    ///
    /// # Panics
    /// Panics when the sum is not diagonal.
    pub fn diagonal_energy(&self, index: usize) -> f64 {
        assert!(self.is_diagonal(), "observable is not diagonal");
        self.terms
            .iter()
            .map(|(c, p)| {
                let mut zmask = 0usize;
                for &(q, _) in p.ops() {
                    zmask |= 1 << q;
                }
                let parity = ((index & zmask).count_ones() & 1) as i32;
                c * (1.0 - 2.0 * parity as f64)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn prepared(c: &Circuit) -> StateVector {
        let mut s = StateVector::zero(c.n_qubits());
        s.run(c, &[]);
        s
    }

    #[test]
    fn z_expectation_on_basis_states() {
        let s0 = StateVector::zero(1);
        assert!((PauliString::z(0).expectation(&s0) - 1.0).abs() < 1e-12);
        let s1 = StateVector::basis(1, 1);
        assert!((PauliString::z(0).expectation(&s1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = prepared(&c);
        assert!((PauliString::x(0).expectation(&s) - 1.0).abs() < 1e-12);
        assert!(PauliString::z(0).expectation(&s).abs() < 1e-12);
    }

    #[test]
    fn y_expectation_on_circular_state() {
        let mut c = Circuit::new(1);
        c.h(0).s(0); // |+i> state
        let s = prepared(&c);
        assert!((PauliString::y(0).expectation(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zz_correlation_in_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = prepared(&c);
        assert!((PauliString::zz(0, 1).expectation(&s) - 1.0).abs() < 1e-12);
        // Singlet-like anti-correlation after X on one side.
        let mut c2 = Circuit::new(2);
        c2.h(0).cx(0, 1).x(1);
        let s2 = prepared(&c2);
        assert!((PauliString::zz(0, 1).expectation(&s2) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn xx_correlation_in_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = prepared(&c);
        let xx = PauliString::new(vec![(0, Pauli::X), (1, Pauli::X)]);
        assert!((xx.expectation(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_is_involution_for_pauli_strings() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(2).ry(2, 0.9);
        let s = prepared(&c);
        let p = PauliString::new(vec![(0, Pauli::X), (1, Pauli::Y), (2, Pauli::Z)]);
        let twice = p.apply(&p.apply(&s));
        assert!(twice.fidelity(&s) > 1.0 - 1e-10);
    }

    #[test]
    fn expectation_matches_apply_inner_product() {
        let mut c = Circuit::new(2);
        c.ry(0, 0.7).cx(0, 1).rz(1, 0.4);
        let s = prepared(&c);
        let p = PauliString::new(vec![(0, Pauli::Z), (1, Pauli::Z)]);
        let via_fast = p.expectation(&s);
        let via_apply = s.inner(&p.apply(&s)).re;
        assert!((via_fast - via_apply).abs() < 1e-12);
    }

    #[test]
    fn mask_based_apply_matches_per_factor_reference() {
        use qmldb_math::Rng64;
        // Brute force: apply each factor's 2×2 action index-wise.
        fn reference(p: &PauliString, s: &StateVector) -> Vec<C64> {
            let src = s.amplitudes();
            let mut flip = 0usize;
            for &(q, op) in p.ops() {
                if op != Pauli::Z {
                    flip |= 1 << q;
                }
            }
            (0..src.len())
                .map(|i| {
                    let j = i ^ flip;
                    let mut phase = C64::ONE;
                    for &(q, op) in p.ops() {
                        let bit = (j >> q) & 1;
                        match op {
                            Pauli::X => {}
                            Pauli::Y => phase *= if bit == 0 { C64::I } else { -C64::I },
                            Pauli::Z => {
                                if bit == 1 {
                                    phase = -phase;
                                }
                            }
                        }
                    }
                    phase * src[j]
                })
                .collect()
        }
        let mut rng = Rng64::new(17);
        let paulis = [Pauli::X, Pauli::Y, Pauli::Z];
        for case in 0..40 {
            let n = 1 + case % 5;
            let amps: Vec<C64> = (0..1usize << n)
                .map(|_| C64::new(rng.uniform() - 0.5, rng.uniform() - 0.5))
                .collect();
            let s = StateVector::from_amplitudes(amps);
            let mut ops: Vec<(usize, Pauli)> = Vec::new();
            for q in 0..n {
                if rng.chance(0.6) {
                    ops.push((q, paulis[rng.below(3) as usize]));
                }
            }
            if ops.is_empty() {
                continue;
            }
            let p = PauliString::new(ops);
            let expect = reference(&p, &s);
            let got = p.apply(&s);
            for (i, (a, b)) in got.amplitudes().iter().zip(&expect).enumerate() {
                assert!(
                    a.approx_eq(*b, 1e-12),
                    "case {case} amp {i}: {a:?} vs {b:?}"
                );
            }
            // expectation agrees with the inner-product definition.
            let direct = p.expectation(&s);
            let via_apply = s.inner(&got).re;
            assert!((direct - via_apply).abs() < 1e-12, "case {case}");
        }
    }

    #[test]
    fn pauli_sum_linear_combination() {
        let s = StateVector::zero(2);
        let h = PauliSum::from_terms(vec![
            (0.5, PauliString::z(0)),
            (-1.5, PauliString::z(1)),
            (2.0, PauliString::identity()),
        ]);
        // <Z0> = <Z1> = 1 on |00>.
        assert!((h.expectation(&s) - (0.5 - 1.5 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn from_terms_merges_duplicates() {
        let h = PauliSum::from_terms(vec![
            (1.0, PauliString::z(0)),
            (2.0, PauliString::z(0)),
            (-3.0, PauliString::z(0)),
        ]);
        assert!(h.is_empty());
    }

    #[test]
    fn apply_to_matches_termwise_accumulation() {
        use qmldb_math::Rng64;
        let mut rng = Rng64::new(29);
        let n = 3;
        let amps: Vec<C64> = (0..1usize << n)
            .map(|_| C64::new(rng.uniform() - 0.5, rng.uniform() - 0.5))
            .collect();
        let s = StateVector::from_amplitudes(amps);
        let h = PauliSum::from_terms(vec![
            (0.8, PauliString::z(0)),
            (-0.4, PauliString::new(vec![(0, Pauli::X), (2, Pauli::Y)])),
            (1.3, PauliString::zz(1, 2)),
            (0.2, PauliString::identity()),
        ]);
        let got = h.apply_to(&s);
        // Reference: c·(P|ψ⟩) accumulated per term through PauliString::apply.
        let mut expect = vec![C64::ZERO; 1 << n];
        for (c, p) in h.terms() {
            for (e, a) in expect.iter_mut().zip(p.apply(&s).amplitudes()) {
                *e += a.scale(*c);
            }
        }
        for (i, (a, b)) in got.amplitudes().iter().zip(&expect).enumerate() {
            assert!(a.approx_eq(*b, 1e-12), "amp {i}: {a:?} vs {b:?}");
        }
        // ⟨ψ|H|ψ⟩ through the co-state equals the direct expectation.
        assert!((s.inner(&got).re - h.expectation(&s)).abs() < 1e-12);
    }

    #[test]
    fn apply_to_is_unnormalized_for_scaled_observables() {
        let s = StateVector::zero(1);
        let h = PauliSum::from_terms(vec![(3.0, PauliString::z(0))]);
        let lam = h.apply_to(&s);
        // H|0⟩ = 3|0⟩ — the norm carries the coefficient.
        assert!((lam.norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_energy_matches_expectation_on_basis_states() {
        let h = PauliSum::from_terms(vec![
            (1.0, PauliString::z(0)),
            (0.5, PauliString::zz(0, 1)),
            (-0.25, PauliString::identity()),
        ]);
        for idx in 0..4 {
            let s = StateVector::basis(2, idx);
            assert!(
                (h.diagonal_energy(idx) - h.expectation(&s)).abs() < 1e-12,
                "index {idx}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not diagonal")]
    fn diagonal_energy_rejects_x_terms() {
        let h = PauliSum::from_terms(vec![(1.0, PauliString::x(0))]);
        h.diagonal_energy(0);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_qubit_in_string_panics() {
        PauliString::new(vec![(0, Pauli::X), (0, Pauli::Z)]);
    }

    #[test]
    fn display_formatting() {
        let p = PauliString::new(vec![(2, Pauli::Z), (0, Pauli::X)]);
        assert_eq!(p.to_string(), "X0·Z2");
        assert_eq!(PauliString::identity().to_string(), "I");
    }
}
