//! State-vector simulation engine.
//!
//! Amplitudes are stored with qubit 0 as the **least significant bit** of
//! the basis index (the Qiskit convention). All gate application routines
//! preserve the 2-norm up to floating-point rounding; this invariant is
//! enforced by property tests.

use crate::circuit::{Circuit, Instr};
use qmldb_math::{CMatrix, Rng64, C64};

/// A pure quantum state on `n` qubits as 2ⁿ complex amplitudes.
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state |0…0⟩.
    pub fn zero(n: usize) -> Self {
        assert!(n <= 30, "refusing to allocate a state for {n} qubits");
        let mut amps = vec![C64::ZERO; 1usize << n];
        amps[0] = C64::ONE;
        StateVector { n, amps }
    }

    /// The computational basis state |index⟩.
    pub fn basis(n: usize, index: usize) -> Self {
        assert!(
            index < 1usize << n,
            "basis index {index} out of range for {n} qubits (< {})",
            1usize << n
        );
        let mut s = StateVector::zero(n);
        s.amps[0] = C64::ZERO;
        s.amps[index] = C64::ONE;
        s
    }

    /// Builds a state from raw amplitudes, normalizing them.
    ///
    /// # Panics
    /// Panics if the length is not a power of two or the norm is zero.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        assert!(
            amps.len().is_power_of_two() && !amps.is_empty(),
            "amplitude count must be a power of two"
        );
        let n = amps.len().trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 0.0, "cannot normalize the zero vector");
        let amps = amps.into_iter().map(|a| a / norm).collect();
        StateVector { n, amps }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The amplitude vector.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Mutable amplitudes (norm is the caller's responsibility).
    pub fn amplitudes_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// ⟨self|other⟩.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n, other.n, "inner: qubit count mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .fold(C64::ZERO, |acc, (a, b)| acc + a.conj() * *b)
    }

    /// Fidelity |⟨self|other⟩|².
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// 2-norm of the state (should always be 1).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Measurement probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability that qubit `q` reads 1. Sums the contiguous
    /// `bit`-length blocks where the target bit is set (stride `2·bit`)
    /// instead of filtering every index.
    pub fn prob_one(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        let mut sum = 0.0;
        let mut base = bit;
        while base < self.amps.len() {
            for a in &self.amps[base..base + bit] {
                sum += a.norm_sqr();
            }
            base += 2 * bit;
        }
        sum
    }

    /// Applies every instruction of `circuit` with angles resolved against
    /// `params`.
    ///
    /// On [`Self::COMPILE_MIN_QUBITS`] qubits or more, the circuit is
    /// lowered through [`crate::compile::CompiledCircuit`] (specialized
    /// kernels, gate fusion, slab parallelism) before executing; below
    /// that, lowering costs more than the handful of amplitudes it saves,
    /// so instructions run through the generic path directly.
    ///
    /// This crossover is a **one-shot** heuristic and this method is its
    /// only user: every compile-once/run-many entry point
    /// ([`crate::Simulator::run_batch`],
    /// [`crate::Simulator::run_batch_params`],
    /// [`crate::Simulator::run_compiled`], kernel Gram rows) takes the
    /// compiled path unconditionally, because over a batch the lowering
    /// cost amortizes to nothing while the interpreter's per-gate taxes
    /// recur on every element. Callers that run the same circuit many
    /// times should likewise compile once with [`Circuit::compile`] and
    /// reuse the result.
    pub fn run(&mut self, circuit: &Circuit, params: &[f64]) {
        assert_eq!(self.n, circuit.n_qubits(), "circuit qubit count mismatch");
        assert!(
            params.len() >= circuit.n_params(),
            "circuit needs {} params, got {}",
            circuit.n_params(),
            params.len()
        );
        if self.n >= Self::COMPILE_MIN_QUBITS {
            circuit.compile().run(self, params);
        } else {
            for instr in circuit.instrs() {
                self.apply(instr, params);
            }
        }
    }

    /// Qubit count at which a one-shot [`StateVector::run`] compiles the
    /// circuit before executing.
    ///
    /// Re-measured under pooled dispatch (PR 9): for diagonal-heavy
    /// circuits (QAOA p=2, the fusion-friendliest shape) compile+run
    /// first beats the interpreter at 9 qubits (1.27× at 9q, 1.88× at
    /// 10q); for random depth-20 layered circuits the crossover sits
    /// near 11q (0.84× at 10q). Pinned at the first count where the
    /// common ansatz shape wins — misrouting above costs ~2× and grows
    /// per qubit, misrouting below costs ≤ ~25% once. The value is
    /// dispatch-*insensitive*: states under 2¹⁴ amplitudes never fan
    /// out (see the sim `PAR_MIN`), so this is pure lowering cost vs
    /// per-gate interpreter tax.
    pub const COMPILE_MIN_QUBITS: usize = 9;

    /// Applies every instruction of `circuit` one at a time through the
    /// generic [`StateVector::apply`] path, without compilation or fusion.
    /// This is the reference semantics the compiled kernels are verified
    /// against (property tests and benchmark baselines).
    pub fn run_generic(&mut self, circuit: &Circuit, params: &[f64]) {
        assert_eq!(self.n, circuit.n_qubits(), "circuit qubit count mismatch");
        assert!(
            params.len() >= circuit.n_params(),
            "circuit needs {} params, got {}",
            circuit.n_params(),
            params.len()
        );
        for instr in circuit.instrs() {
            self.apply(instr, params);
        }
    }

    /// Applies a single instruction.
    pub fn apply(&mut self, instr: &Instr, params: &[f64]) {
        // Diagonal fast path: RZZ without controls is the workhorse of
        // QAOA circuits; applying its four phases amplitude-wise avoids
        // the generic gather/scatter kernel entirely.
        if instr.controls.is_empty() {
            if let crate::gate::Gate::RZZ(angle) = &instr.gate {
                let th = angle.resolve(params) / 2.0;
                let plus = C64::cis(th);
                let minus = C64::cis(-th);
                let ba = 1usize << instr.targets[0];
                let bb = 1usize << instr.targets[1];
                for (i, a) in self.amps.iter_mut().enumerate() {
                    let parity = ((i & ba != 0) as u8) ^ ((i & bb != 0) as u8);
                    *a *= if parity == 1 { plus } else { minus };
                }
                return;
            }
        }
        let mat = instr.gate.matrix(params);
        if instr.targets.len() == 1 {
            let m = [[mat[(0, 0)], mat[(0, 1)]], [mat[(1, 0)], mat[(1, 1)]]];
            self.apply_1q(instr.targets[0], &instr.controls, &m);
        } else {
            self.apply_kq(&mat, &instr.targets, &instr.controls);
        }
    }

    /// Fast path: (controlled) single-qubit gate.
    fn apply_1q(&mut self, target: usize, controls: &[usize], m: &[[C64; 2]; 2]) {
        let bit = 1usize << target;
        let cmask: usize = controls.iter().map(|&c| 1usize << c).sum();
        let dim = self.amps.len();
        // Iterate over pairs (i, i|bit) with the target bit of i clear.
        let mut i = 0usize;
        while i < dim {
            if i & bit != 0 {
                // Skip the whole block where the target bit is set.
                i += bit;
                continue;
            }
            if i & cmask == cmask {
                let j = i | bit;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
            i += 1;
        }
    }

    /// General path: a dense unitary on `k` target qubits with optional
    /// controls.
    fn apply_kq(&mut self, mat: &CMatrix, targets: &[usize], controls: &[usize]) {
        let k = targets.len();
        let dim = 1usize << k;
        debug_assert_eq!(mat.rows(), dim);
        let cmask: usize = controls.iter().map(|&c| 1usize << c).sum();
        let tmask: usize = targets.iter().map(|&t| 1usize << t).sum();

        // Precompute the scatter offsets of each sub-index once.
        let mut offsets = vec![0usize; dim];
        for (b, off) in offsets.iter_mut().enumerate() {
            for (t, &tq) in targets.iter().enumerate() {
                if b & (1 << t) != 0 {
                    *off |= 1 << tq;
                }
            }
        }
        // Enumerate all indices with target bits clear by counting through
        // the complement positions.
        let n_outer = self.amps.len() >> k;
        let mut scratch = vec![C64::ZERO; dim];
        let mut transformed = vec![C64::ZERO; dim];
        let mat_data = mat.as_slice();
        for outer in 0..n_outer {
            // Spread `outer` bits into the non-target positions.
            let mut base = 0usize;
            let mut rem = outer;
            let mut pos = 0usize;
            while rem != 0 || pos < self.n {
                if pos >= self.n {
                    break;
                }
                let b = 1usize << pos;
                if tmask & b == 0 {
                    if rem & 1 != 0 {
                        base |= b;
                    }
                    rem >>= 1;
                }
                pos += 1;
            }
            if base & cmask != cmask {
                continue;
            }
            // Gather, transform, scatter — no per-iteration allocation.
            for (s, &off) in scratch.iter_mut().zip(&offsets) {
                *s = self.amps[base | off];
            }
            for (row, out) in transformed.iter_mut().enumerate() {
                let mut acc = C64::ZERO;
                let mrow = &mat_data[row * dim..(row + 1) * dim];
                for (m, s) in mrow.iter().zip(&scratch) {
                    acc += *m * *s;
                }
                *out = acc;
            }
            for (v, &off) in transformed.iter().zip(&offsets) {
                self.amps[base | off] = *v;
            }
        }
    }

    /// Samples `shots` measurement outcomes of all qubits without
    /// collapsing the state. Returns raw basis indices.
    pub fn sample(&self, shots: usize, rng: &mut Rng64) -> Vec<usize> {
        // Cumulative distribution + binary search per shot.
        let mut cdf = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0;
        for a in &self.amps {
            acc += a.norm_sqr();
            cdf.push(acc);
        }
        let total = acc;
        (0..shots)
            .map(|_| {
                let u = rng.uniform() * total;
                // First index with cdf > u. A plain binary search can land
                // on an exact boundary hit (u == cdf[i], common when
                // amplitudes are exactly 0 or 1) and select an outcome of
                // zero probability.
                cdf.partition_point(|&p| p <= u).min(self.amps.len() - 1)
            })
            .collect()
    }

    /// Samples and histograms `shots` outcomes: map basis-index → count.
    pub fn sample_counts(
        &self,
        shots: usize,
        rng: &mut Rng64,
    ) -> std::collections::HashMap<usize, usize> {
        let mut counts = std::collections::HashMap::new();
        for outcome in self.sample(shots, rng) {
            *counts.entry(outcome).or_insert(0) += 1;
        }
        counts
    }

    /// Projectively measures qubit `q`, collapsing the state. Returns the
    /// observed bit.
    pub fn measure(&mut self, q: usize, rng: &mut Rng64) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.chance(p1);
        self.collapse(q, outcome);
        outcome
    }

    /// Forces qubit `q` into `outcome` (post-selection), renormalizing.
    ///
    /// # Panics
    /// Panics if the requested outcome has (numerically) zero probability.
    pub fn collapse(&mut self, q: usize, outcome: bool) {
        let bit = 1usize << q;
        let keep = if outcome { bit } else { 0 };
        let mut norm_sqr = 0.0;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & bit == keep {
                norm_sqr += a.norm_sqr();
            } else {
                *a = C64::ZERO;
            }
        }
        assert!(norm_sqr > 1e-300, "collapse onto zero-probability outcome");
        let scale = 1.0 / norm_sqr.sqrt();
        for a in self.amps.iter_mut() {
            *a = a.scale(scale);
        }
    }

    /// The reduced probability distribution over a subset of qubits.
    pub fn marginal(&self, qubits: &[usize]) -> Vec<f64> {
        let k = qubits.len();
        let mut probs = vec![0.0; 1usize << k];
        for (i, a) in self.amps.iter().enumerate() {
            let mut sub = 0usize;
            for (b, &q) in qubits.iter().enumerate() {
                if i & (1 << q) != 0 {
                    sub |= 1 << b;
                }
            }
            probs[sub] += a.norm_sqr();
        }
        probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn run(c: &Circuit) -> StateVector {
        let mut s = StateVector::zero(c.n_qubits());
        s.run(c, &[]);
        s
    }

    #[test]
    fn zero_state_is_deterministic() {
        let s = StateVector::zero(3);
        assert_eq!(s.probabilities()[0], 1.0);
        assert!((s.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn x_flips_bit() {
        let mut c = Circuit::new(2);
        c.x(1);
        let s = run(&c);
        assert!((s.probabilities()[0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_makes_uniform_superposition() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = run(&c);
        assert!(s.amplitudes()[0].approx_eq(C64::real(FRAC_1_SQRT_2), 1e-12));
        assert!(s.amplitudes()[1].approx_eq(C64::real(FRAC_1_SQRT_2), 1e-12));
    }

    #[test]
    fn bell_state_has_correct_correlations() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = run(&c);
        let p = s.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01].abs() < 1e-12);
        assert!(p[0b10].abs() < 1e-12);
    }

    #[test]
    fn ghz_state_on_four_qubits() {
        let mut c = Circuit::new(4);
        c.h(0);
        for q in 0..3 {
            c.cx(q, q + 1);
        }
        let s = run(&c);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[0b1111] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn toffoli_truth_table() {
        for input in 0..8usize {
            let mut s = StateVector::basis(3, input);
            let mut c = Circuit::new(3);
            c.ccx(0, 1, 2);
            s.run(&c, &[]);
            let expected = if input & 0b011 == 0b011 {
                input ^ 0b100
            } else {
                input
            };
            assert!(
                (s.probabilities()[expected] - 1.0).abs() < 1e-12,
                "input {input}"
            );
        }
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut s = StateVector::basis(2, 0b01);
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        s.run(&c, &[]);
        assert!((s.probabilities()[0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cswap_only_acts_when_control_set() {
        let mut c = Circuit::new(3);
        c.cswap(0, 1, 2);
        // Control clear: |010> stays.
        let mut s = StateVector::basis(3, 0b010);
        s.run(&c, &[]);
        assert!((s.probabilities()[0b010] - 1.0).abs() < 1e-12);
        // Control set: |011> -> |101>.
        let mut s = StateVector::basis(3, 0b011);
        s.run(&c, &[]);
        assert!((s.probabilities()[0b101] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circuit_then_inverse_is_identity() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(2).rzz(1, 2, 0.7).ry(0, 1.2).ccx(0, 1, 2);
        let mut s = StateVector::zero(3);
        s.run(&c, &[]);
        s.run(&c.inverse(), &[]);
        let expect = StateVector::zero(3);
        assert!(s.fidelity(&expect) > 1.0 - 1e-10);
    }

    #[test]
    fn norm_is_preserved_through_deep_circuit() {
        let mut c = Circuit::new(4);
        for layer in 0..10 {
            for q in 0..4 {
                c.ry(q, 0.3 * layer as f64 + q as f64);
            }
            for q in 0..3 {
                c.cx(q, q + 1);
            }
        }
        let s = run(&c);
        assert!((s.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn prob_one_matches_probabilities() {
        let mut c = Circuit::new(2);
        c.ry(0, 1.0).cx(0, 1);
        let s = run(&c);
        let p = s.probabilities();
        let expect = p[0b01] + p[0b11];
        assert!((s.prob_one(0) - expect).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut c = Circuit::new(1);
        c.ry(0, 1.0); // p1 = sin^2(0.5) ≈ 0.2298
        let s = run(&c);
        let mut rng = Rng64::new(77);
        let shots = 100_000;
        let ones = s
            .sample(shots, &mut rng)
            .into_iter()
            .filter(|&o| o == 1)
            .count();
        let freq = ones as f64 / shots as f64;
        assert!((freq - 0.5f64.sin().powi(2)).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn sampling_basis_state_never_selects_zero_probability_outcome() {
        // Regression: a CDF with exact 0/1 boundaries (|10⟩ here) used to
        // let binary search land on an Ok(i) boundary hit and return a
        // zero-probability outcome.
        let s = StateVector::basis(2, 0b10);
        let mut rng = Rng64::new(123);
        for outcome in s.sample(10_000, &mut rng) {
            assert_eq!(outcome, 0b10);
        }
    }

    #[test]
    #[should_panic(expected = "basis index 4 out of range for 2 qubits")]
    fn basis_index_out_of_range_panics_with_message() {
        StateVector::basis(2, 4);
    }

    #[test]
    fn measure_collapses_consistently() {
        let mut rng = Rng64::new(5);
        for _ in 0..20 {
            let mut c = Circuit::new(2);
            c.h(0).cx(0, 1);
            let mut s = StateVector::zero(2);
            s.run(&c, &[]);
            let b0 = s.measure(0, &mut rng);
            let b1 = s.measure(1, &mut rng);
            assert_eq!(b0, b1, "Bell measurement must correlate");
        }
    }

    #[test]
    fn collapse_post_selects() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut s = StateVector::zero(2);
        s.run(&c, &[]);
        s.collapse(0, true);
        assert!((s.probabilities()[0b11] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_distribution() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1); // qubit 2 stays |0>
        let s = run(&c);
        let m = s.marginal(&[2]);
        assert!((m[0] - 1.0).abs() < 1e-12);
        let m01 = s.marginal(&[0, 1]);
        assert!((m01[0b00] - 0.5).abs() < 1e-12);
        assert!((m01[0b11] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parameterized_run_uses_params() {
        let mut c = Circuit::new(1);
        let p = c.new_param();
        c.ry(0, p);
        let mut s = StateVector::zero(1);
        s.run(&c, &[std::f64::consts::PI]);
        assert!((s.probabilities()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s = StateVector::from_amplitudes(vec![
            C64::real(3.0),
            C64::real(0.0),
            C64::real(4.0),
            C64::real(0.0),
        ]);
        assert!((s.norm() - 1.0).abs() < 1e-12);
        assert!((s.probabilities()[0] - 0.36).abs() < 1e-12);
        assert!((s.probabilities()[2] - 0.64).abs() < 1e-12);
    }

    #[test]
    fn mcz_applies_phase_only_on_all_ones() {
        let mut c = Circuit::new(3);
        c.mcz(&[0, 1], 2);
        let mut s = StateVector::from_amplitudes(vec![C64::real(1.0); 8]);
        s.run(&c, &[]);
        for (i, a) in s.amplitudes().iter().enumerate() {
            let expected = if i == 0b111 { -1.0 } else { 1.0 };
            assert!(
                a.approx_eq(C64::real(expected / 8f64.sqrt()), 1e-12),
                "index {i}"
            );
        }
    }

    #[test]
    fn general_unitary_gate_applies() {
        use crate::gate::Gate;
        // A 2-qubit unitary: the SWAP matrix via Gate::Unitary.
        let swap = Gate::Swap.matrix(&[]);
        let mut c = Circuit::new(2);
        c.push(Gate::Unitary(swap), vec![], vec![0, 1]);
        let mut s = StateVector::basis(2, 0b01);
        s.run(&c, &[]);
        assert!((s.probabilities()[0b10] - 1.0).abs() < 1e-12);
    }
}
