//! Circuit compilation: lower a [`Circuit`] once into a flat list of
//! specialized kernel ops, then run it many times.
//!
//! The interpreter in [`StateVector::apply`] pays three taxes per
//! instruction: a heap-allocated [`qmldb_math::CMatrix`] even for constant
//! gates, a branchy scalar pair loop, and a full amplitude pass per gate
//! even when consecutive gates commute. Every workload in the workspace —
//! VQC training, Gram matrices, QAOA join ordering, Grover, HHL — re-runs
//! the *same* circuit with different parameters, so the lowering cost is
//! paid once and amortized over thousands of executions.
//!
//! Compilation performs three transformations:
//!
//! 1. **Specialization** — each gate becomes one of a handful of kernel
//!    ops: diagonal gates (Z/S/T/P/RZ/RZZ and their controlled forms)
//!    become phase terms, X/CX/CCX an amplitude-pair swap, SWAP an index
//!    permutation, constant 1q/2q gates a cached `[C64; 4]`/`[C64; 16]`,
//!    parameterized rotations a stack-built matrix. Nothing inside the run
//!    loop allocates.
//! 2. **Fusion** — adjacent uncontrolled 1q constant gates on the same
//!    target collapse into one 2×2 matrix at compile time ("adjacent" up
//!    to commuting past ops that touch other qubits), and maximal runs of
//!    consecutive diagonal ops collapse into a *single* amplitude pass.
//!    A QAOA cost layer of a hundred RZZ gates becomes one pass.
//! 3. **Slab parallelism** — kernels run over disjoint contiguous
//!    amplitude slabs via [`qmldb_math::par::for_slabs`]. A gate on target
//!    bit `b` couples only index pairs `(i, i|b)`, which both live inside
//!    any slab aligned to `2b`, so slabs are independent. Gate application
//!    involves no RNG and the per-amplitude arithmetic is identical for
//!    any partition, so results are **bit-identical for any thread
//!    count** — the PR 1 determinism contract holds by construction.

use crate::circuit::{Circuit, Instr};
use crate::gate::{Angle, Gate};
use crate::statevector::StateVector;
use qmldb_math::{par, CMatrix, C64};

/// Amplitude counts below this run serially: fan-out dispatch costs more
/// than the pass itself on small states (< 2¹⁴ amplitudes). Re-checked
/// under pooled dispatch (PR 9): the per-fan-out cost fell ~8× (≈6 µs
/// pooled vs ≈53 µs scoped-spawn at 4 workers), but a sub-16k-amplitude
/// pass still finishes in about one dispatch quantum, so the threshold
/// stays pinned; a multi-core re-measurement could lower it.
const PAR_MIN: usize = 1 << 14;

/// The kernel cache block: every parallel split lands on 256-amplitude
/// (4 KiB) boundaries, matching the diagonal kernel's low-field table
/// ([`DIAG_LO`]) so all kernels share one deterministic block grid.
const BLOCK: usize = 256;

/// Number of `2b` super-blocks above which a gate on a high target bit
/// keeps the contiguous slab path: with at least this many independent
/// super-blocks, slabs aligned to `2b` already feed every worker, and an
/// intra-block pair split would only add dispatch overhead. Below it
/// (top-bit gates), the pair split is the only source of parallelism.
///
/// Re-checked under pooled dispatch (PR 9): the pair split pays one
/// fan-out per super-block (up to 15 per op at this boundary), so the
/// pool cut its worst-case dispatch penalty from ≈0.8 ms to ≈0.1 ms per
/// op — but the rule itself is load-balance-driven (contiguous `2b`
/// slabs must outnumber workers with margin), which dispatch cost does
/// not move. The boundary stays at 16.
const PAR_SUPER: usize = 16;

/// Number of low index bits the diagonal kernel factors into pass-wide
/// tables (the "low field"). 2⁸ complex entries keep every table in L1.
const DIAG_LO_BITS: usize = 8;
const DIAG_LO: usize = 1 << DIAG_LO_BITS;

/// Magnitude below which a fused off-diagonal / identity residue is
/// treated as zero. Fusion products of exact gates (H·H, H·X·H, …) land
/// within a few ulps of their closed forms.
const FUSE_EPS: f64 = 1e-14;

/// A diagonal phase term: amplitude `i` is multiplied by `even` or `odd`
/// according to the parity of (at most two) basis bits, gated on controls.
#[derive(Clone, Copy, Debug)]
struct DiagTerm {
    cmask: usize,
    /// Shifts of the parity bits: parity = `((i>>sa) ^ (i>>sb)) & 1`.
    /// Single-bit terms set `sb = n_qubits`, a bit that is always clear.
    sa: u32,
    sb: u32,
    kind: DiagKind,
}

#[derive(Clone, Copy, Debug)]
enum DiagKind {
    /// Fixed phases (Z, S, T, fused constants, const RZ/RZZ/P).
    Const { even: C64, odd: C64 },
    /// RZ/RZZ-style rotation: even = e^{-iθ/2}, odd = e^{iθ/2}.
    Rot(Angle),
    /// Phase-gate style: even = 1, odd = e^{iθ}.
    Phase(Angle),
}

impl DiagTerm {
    fn resolve(&self, params: &[f64]) -> ResolvedDiag {
        let (even, odd) = match self.kind {
            DiagKind::Const { even, odd } => (even.arg(), odd.arg()),
            DiagKind::Rot(a) => {
                let th = a.resolve(params) / 2.0;
                (-th, th)
            }
            DiagKind::Phase(a) => (0.0, a.resolve(params)),
        };
        ResolvedDiag {
            cmask: self.cmask,
            sa: self.sa,
            sb: self.sb,
            even,
            odd,
        }
    }
}

/// A diagonal term resolved against a parameter vector, as phase *angles*
/// (every diagonal entry of a unitary has unit modulus, so the angle is
/// the whole story). Angles add where phases would multiply, which lets
/// [`apply_diag`] accumulate a run of terms with scalar `f64` adds and
/// spend only one complex multiply per amplitude.
#[derive(Clone, Copy)]
struct ResolvedDiag {
    cmask: usize,
    sa: u32,
    sb: u32,
    /// Radians applied when the bit parity is even.
    even: f64,
    /// Radians applied when the bit parity is odd.
    odd: f64,
}

/// A parameterized single-qubit rotation whose 2×2 matrix is rebuilt on
/// the stack each run.
#[derive(Clone, Copy, Debug)]
enum RotKind {
    Rx(Angle),
    Ry(Angle),
    U3(Angle, Angle, Angle),
}

impl RotKind {
    fn matrix(&self, params: &[f64]) -> [C64; 4] {
        match self {
            RotKind::Rx(t) => {
                let th = t.resolve(params) / 2.0;
                let (c, s) = (C64::real(th.cos()), C64::new(0.0, -th.sin()));
                [c, s, s, c]
            }
            RotKind::Ry(t) => {
                let th = t.resolve(params) / 2.0;
                let (c, s) = (C64::real(th.cos()), C64::real(th.sin()));
                [c, -s, s, c]
            }
            RotKind::U3(theta, phi, lam) => {
                let th = theta.resolve(params) / 2.0;
                let (ph, lm) = (phi.resolve(params), lam.resolve(params));
                [
                    C64::real(th.cos()),
                    -(C64::cis(lm) * th.sin()),
                    C64::cis(ph) * th.sin(),
                    C64::cis(ph + lm) * th.cos(),
                ]
            }
        }
    }
}

/// One compiled kernel op.
#[derive(Clone, Debug)]
enum Op {
    /// A run of commuting diagonal phase terms (a range into the shared
    /// term pool), applied in a single amplitude pass.
    Diag { start: usize, end: usize },
    /// (Multi-controlled) X: swaps amplitude pairs.
    Flip { bit: usize, cmask: usize },
    /// (Controlled) constant dense 1q gate, row-major `[m00,m01,m10,m11]`.
    Dense1q {
        bit: usize,
        cmask: usize,
        m: [C64; 4],
    },
    /// (Controlled) parameterized 1q rotation.
    Rot1q {
        bit: usize,
        cmask: usize,
        kind: RotKind,
    },
    /// (Controlled) SWAP as an index permutation.
    Swap { ta: usize, tb: usize, cmask: usize },
    /// (Controlled) constant dense 2q gate, row-major 4×4; sub-index bit 0
    /// is target `ta`, bit 1 is `tb`.
    Dense2q {
        ta: usize,
        tb: usize,
        cmask: usize,
        m: [C64; 16],
    },
    /// (Controlled) parameterized XX/YY rotation.
    Rot2q {
        ta: usize,
        tb: usize,
        cmask: usize,
        yy: bool,
        angle: Angle,
    },
    /// Generic dense k-qubit unitary: the gather/transform/scatter kernel
    /// with scatter offsets precomputed at compile time. Runs serially
    /// (it is the rare path — QPE-style unitary blocks).
    DenseKq {
        mat: CMatrix,
        offsets: Vec<usize>,
        tmask: usize,
        cmask: usize,
    },
}

/// Stage-1 lowering of an instruction, before fusion and classification.
#[derive(Clone, Debug)]
enum S1 {
    /// Constant 1q gate (including X/Y/Z/H/S/T and constant rotations).
    C1 {
        bit: usize,
        cmask: usize,
        m: [C64; 4],
    },
    /// Diagonal term that cannot fuse with dense 1q neighbours
    /// (parameterized RZ/P, or any RZZ).
    Diag {
        cmask: usize,
        sa: u32,
        sb: u32,
        kind: DiagKind,
    },
    R1 {
        bit: usize,
        cmask: usize,
        kind: RotKind,
    },
    Sw {
        ta: usize,
        tb: usize,
        cmask: usize,
    },
    C2 {
        ta: usize,
        tb: usize,
        cmask: usize,
        m: [C64; 16],
    },
    R2 {
        ta: usize,
        tb: usize,
        cmask: usize,
        yy: bool,
        angle: Angle,
    },
    Kq {
        mat: CMatrix,
        targets: Vec<usize>,
        cmask: usize,
    },
}

impl S1 {
    /// Mask of every qubit the op reads or writes (targets and controls).
    fn support(&self) -> usize {
        match self {
            S1::C1 { bit, cmask, .. } | S1::R1 { bit, cmask, .. } => bit | cmask,
            S1::Diag { cmask, sa, sb, .. } => {
                // `sb` may be the always-clear sentinel bit `n`; it is
                // outside every other op's support, so including it is
                // harmless.
                cmask | (1usize << sa) | (1usize << sb)
            }
            S1::Sw { ta, tb, cmask } | S1::C2 { ta, tb, cmask, .. } => ta | tb | cmask,
            S1::R2 { ta, tb, cmask, .. } => ta | tb | cmask,
            S1::Kq { targets, cmask, .. } => targets.iter().fold(*cmask, |m, &t| m | (1usize << t)),
        }
    }
}

fn mat2_of(m: &CMatrix) -> [C64; 4] {
    [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]]
}

fn mat4_of(m: &CMatrix) -> [C64; 16] {
    let mut out = [C64::ZERO; 16];
    out.copy_from_slice(m.as_slice());
    out
}

/// `b · a` — the matrix of "apply `a`, then `b`".
fn mul2(b: &[C64; 4], a: &[C64; 4]) -> [C64; 4] {
    [
        b[0] * a[0] + b[1] * a[2],
        b[0] * a[1] + b[1] * a[3],
        b[2] * a[0] + b[3] * a[2],
        b[2] * a[1] + b[3] * a[3],
    ]
}

fn is_identity2(m: &[C64; 4]) -> bool {
    (m[0] - C64::ONE).abs() < FUSE_EPS
        && (m[3] - C64::ONE).abs() < FUSE_EPS
        && m[1].abs() < FUSE_EPS
        && m[2].abs() < FUSE_EPS
}

fn is_diagonal2(m: &[C64; 4]) -> bool {
    m[1].abs() < FUSE_EPS && m[2].abs() < FUSE_EPS
}

fn is_exact_x(m: &[C64; 4]) -> bool {
    m[0] == C64::ZERO && m[3] == C64::ZERO && m[1] == C64::ONE && m[2] == C64::ONE
}

/// A [`Circuit`] lowered into a flat list of specialized kernel ops.
///
/// Compile once with [`CompiledCircuit::new`] (or [`Circuit::compile`]),
/// then [`run`](CompiledCircuit::run) with as many parameter vectors as
/// needed. The run loop performs no heap allocation beyond two scratch
/// buffers sized at entry.
#[derive(Clone, Debug)]
pub struct CompiledCircuit {
    n_qubits: usize,
    n_params: usize,
    ops: Vec<Op>,
    terms: Vec<DiagTerm>,
    /// Longest diagonal run (scratch sizing).
    max_run: usize,
    /// Largest generic-kernel block dimension (scratch sizing; 0 if none).
    max_kq_dim: usize,
    /// Instruction count of the source circuit (for diagnostics).
    n_source_instrs: usize,
}

impl Circuit {
    /// Lowers this circuit into a [`CompiledCircuit`].
    pub fn compile(&self) -> CompiledCircuit {
        CompiledCircuit::new(self)
    }
}

impl CompiledCircuit {
    /// Lowers `circuit`: specializes every instruction, fuses adjacent
    /// constant 1q gates and consecutive diagonal ops, and precomputes the
    /// scatter offsets of generic unitary blocks.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.n_qubits();
        let stage1: Vec<S1> = circuit
            .instrs()
            .iter()
            .filter_map(|instr| lower(instr, n))
            .collect();
        let fused = fuse_1q(stage1, n);

        // Classification + diagonal-run grouping.
        let mut ops: Vec<Op> = Vec::new();
        let mut terms: Vec<DiagTerm> = Vec::new();
        let mut run_start: Option<usize> = None;
        let flush = |ops: &mut Vec<Op>, terms: &[DiagTerm], run_start: &mut Option<usize>| {
            if let Some(start) = run_start.take() {
                ops.push(Op::Diag {
                    start,
                    end: terms.len(),
                });
            }
        };
        for op in fused {
            let term = classify(op, n);
            match term {
                Classified::Term(t) => {
                    if run_start.is_none() {
                        run_start = Some(terms.len());
                    }
                    terms.push(t);
                }
                Classified::Op(op) => {
                    flush(&mut ops, &terms, &mut run_start);
                    ops.push(op);
                }
                Classified::Drop => {}
            }
        }
        flush(&mut ops, &terms, &mut run_start);

        let max_run = ops
            .iter()
            .map(|op| match op {
                Op::Diag { start, end } => end - start,
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        let max_kq_dim = ops
            .iter()
            .map(|op| match op {
                Op::DenseKq { offsets, .. } => offsets.len(),
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        CompiledCircuit {
            n_qubits: n,
            n_params: circuit.n_params(),
            ops,
            terms,
            max_run,
            max_kq_dim,
            n_source_instrs: circuit.instrs().len(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of parameters the source circuit declared.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Number of kernel ops after fusion (a whole diagonal run counts as
    /// one op).
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of diagonal phase terms across all runs.
    pub fn n_diag_terms(&self) -> usize {
        self.terms.len()
    }

    /// Instruction count of the source circuit.
    pub fn n_source_instrs(&self) -> usize {
        self.n_source_instrs
    }

    /// Runs the compiled ops against `state` with angles resolved from
    /// `params`.
    pub fn run(&self, state: &mut StateVector, params: &[f64]) {
        assert_eq!(
            state.n_qubits(),
            self.n_qubits,
            "compiled circuit qubit count mismatch"
        );
        assert!(
            params.len() >= self.n_params,
            "compiled circuit needs {} params, got {}",
            self.n_params,
            params.len()
        );
        // The only allocations of the run: scratch sized once, reused by
        // every op.
        let mut rdiag: Vec<ResolvedDiag> = Vec::with_capacity(self.max_run);
        let mut kq_in = vec![C64::ZERO; self.max_kq_dim];
        let mut kq_out = vec![C64::ZERO; self.max_kq_dim];
        let amps = state.amplitudes_mut();
        for op in &self.ops {
            match op {
                Op::Diag { start, end } => {
                    // Resolve uncontrolled terms first: `apply_diag` fast-
                    // paths them and runs the (rare) controlled remainder
                    // as a gated second pass. Diagonal ops commute, so the
                    // reorder is exact.
                    let run = &self.terms[*start..*end];
                    rdiag.clear();
                    rdiag.extend(
                        run.iter()
                            .filter(|t| t.cmask == 0)
                            .map(|t| t.resolve(params)),
                    );
                    let n_plain = rdiag.len();
                    rdiag.extend(
                        run.iter()
                            .filter(|t| t.cmask != 0)
                            .map(|t| t.resolve(params)),
                    );
                    apply_diag(amps, &rdiag, n_plain);
                }
                Op::Flip { bit, cmask } => apply_flip(amps, *bit, *cmask),
                Op::Dense1q { bit, cmask, m } => apply_1q(amps, *bit, *cmask, m),
                Op::Rot1q { bit, cmask, kind } => {
                    apply_1q(amps, *bit, *cmask, &kind.matrix(params))
                }
                Op::Swap { ta, tb, cmask } => apply_swap(amps, *ta, *tb, *cmask),
                Op::Dense2q { ta, tb, cmask, m } => apply_2q(amps, *ta, *tb, *cmask, m),
                Op::Rot2q {
                    ta,
                    tb,
                    cmask,
                    yy,
                    angle,
                } => {
                    let m = rot2q_matrix(*yy, angle.resolve(params));
                    apply_2q(amps, *ta, *tb, *cmask, &m);
                }
                Op::DenseKq {
                    mat,
                    offsets,
                    tmask,
                    cmask,
                } => {
                    let dim = offsets.len();
                    apply_kq(
                        amps,
                        mat,
                        offsets,
                        *tmask,
                        *cmask,
                        &mut kq_in[..dim],
                        &mut kq_out[..dim],
                    );
                }
            }
        }
    }

    /// Runs from |0…0⟩, returning the final state.
    pub fn execute(&self, params: &[f64]) -> StateVector {
        let mut s = StateVector::zero(self.n_qubits);
        self.run(&mut s, params);
        s
    }
}

/// Lowers one instruction; `None` drops it (identity).
fn lower(instr: &Instr, n: usize) -> Option<S1> {
    let cmask: usize = instr.controls.iter().map(|&c| 1usize << c).sum();
    let t0 = |i: &Instr| 1usize << i.targets[0];
    let all_const = instr
        .gate
        .angles()
        .iter()
        .all(|a| matches!(a, Angle::Const(_)));
    let diag1 = |kind: DiagKind| S1::Diag {
        cmask,
        sa: instr.targets[0] as u32,
        sb: n as u32,
        kind,
    };
    Some(match &instr.gate {
        Gate::I => return None,
        Gate::X
        | Gate::Y
        | Gate::Z
        | Gate::H
        | Gate::S
        | Gate::Sdg
        | Gate::T
        | Gate::Tdg
        | Gate::SX => S1::C1 {
            bit: t0(instr),
            cmask,
            m: mat2_of(&instr.gate.matrix(&[])),
        },
        Gate::RX(a) if !all_const => S1::R1 {
            bit: t0(instr),
            cmask,
            kind: RotKind::Rx(*a),
        },
        Gate::RY(a) if !all_const => S1::R1 {
            bit: t0(instr),
            cmask,
            kind: RotKind::Ry(*a),
        },
        Gate::U3(a, b, c) if !all_const => S1::R1 {
            bit: t0(instr),
            cmask,
            kind: RotKind::U3(*a, *b, *c),
        },
        Gate::RZ(a) if !all_const => diag1(DiagKind::Rot(*a)),
        Gate::P(a) if !all_const => diag1(DiagKind::Phase(*a)),
        Gate::RX(_) | Gate::RY(_) | Gate::RZ(_) | Gate::P(_) | Gate::U3(..) => S1::C1 {
            bit: t0(instr),
            cmask,
            m: mat2_of(&instr.gate.matrix(&[])),
        },
        Gate::Swap => S1::Sw {
            ta: 1usize << instr.targets[0],
            tb: 1usize << instr.targets[1],
            cmask,
        },
        Gate::RZZ(a) => S1::Diag {
            cmask,
            sa: instr.targets[0] as u32,
            sb: instr.targets[1] as u32,
            kind: if let Angle::Const(v) = a {
                DiagKind::Const {
                    even: C64::cis(-v / 2.0),
                    odd: C64::cis(v / 2.0),
                }
            } else {
                DiagKind::Rot(*a)
            },
        },
        Gate::RXX(a) | Gate::RYY(a) => {
            let yy = matches!(instr.gate, Gate::RYY(_));
            if let Angle::Const(v) = a {
                S1::C2 {
                    ta: 1usize << instr.targets[0],
                    tb: 1usize << instr.targets[1],
                    cmask,
                    m: rot2q_matrix(yy, *v),
                }
            } else {
                S1::R2 {
                    ta: 1usize << instr.targets[0],
                    tb: 1usize << instr.targets[1],
                    cmask,
                    yy,
                    angle: *a,
                }
            }
        }
        Gate::Unitary(u) => match instr.targets.len() {
            1 => S1::C1 {
                bit: t0(instr),
                cmask,
                m: mat2_of(u),
            },
            2 => S1::C2 {
                ta: 1usize << instr.targets[0],
                tb: 1usize << instr.targets[1],
                cmask,
                m: mat4_of(u),
            },
            _ => S1::Kq {
                mat: u.clone(),
                targets: instr.targets.clone(),
                cmask,
            },
        },
    })
}

/// Fuses runs of uncontrolled constant 1q gates on the same target into a
/// single 2×2 matrix. "Runs" are support-aware: a gate on qubit `q` fuses
/// with the previous constant gate on `q` as long as no intervening op
/// touched `q`, since it commutes past ops on disjoint qubits.
fn fuse_1q(stage1: Vec<S1>, n: usize) -> Vec<S1> {
    let mut out: Vec<S1> = Vec::with_capacity(stage1.len());
    // Per qubit: index into `out` of a fusable pending C1 (cmask == 0).
    let mut pending: Vec<Option<usize>> = vec![None; n];
    for op in stage1 {
        if let S1::C1 { bit, cmask: 0, m } = &op {
            let q = bit.trailing_zeros() as usize;
            if let Some(pi) = pending[q] {
                if let S1::C1 { m: prev, .. } = &mut out[pi] {
                    *prev = mul2(m, prev);
                    continue;
                }
            }
            pending[q] = Some(out.len());
            out.push(op);
            continue;
        }
        let support = op.support();
        for (q, slot) in pending.iter_mut().enumerate() {
            if support & (1usize << q) != 0 {
                *slot = None;
            }
        }
        out.push(op);
    }
    out
}

// Transient per-op return value, consumed immediately by the lowering
// loop — never stored in bulk, so the variant size gap costs nothing and
// boxing would add an allocation per compiled op.
#[allow(clippy::large_enum_variant)]
enum Classified {
    Op(Op),
    Term(DiagTerm),
    Drop,
}

/// Final classification of a fused stage-1 op into a kernel op or a
/// diagonal term. Fused constant matrices that became (near-)diagonal are
/// re-routed into the phase-term pool so they can join diagonal runs.
fn classify(op: S1, n: usize) -> Classified {
    match op {
        S1::C1 { bit, cmask, m } => {
            // The phase-term pool stores angles only, so a diagonal matrix
            // may join it only if both entries are unit-modulus (always
            // true for gate products; a user-supplied non-unitary
            // `Gate::Unitary` stays on the dense path).
            let unit_diag = is_diagonal2(&m)
                && (m[0].abs() - 1.0).abs() < FUSE_EPS
                && (m[3].abs() - 1.0).abs() < FUSE_EPS;
            if is_identity2(&m) {
                Classified::Drop
            } else if unit_diag {
                Classified::Term(DiagTerm {
                    cmask,
                    sa: bit.trailing_zeros(),
                    sb: n as u32,
                    kind: DiagKind::Const {
                        even: m[0],
                        odd: m[3],
                    },
                })
            } else if is_exact_x(&m) {
                Classified::Op(Op::Flip { bit, cmask })
            } else {
                Classified::Op(Op::Dense1q { bit, cmask, m })
            }
        }
        S1::Diag {
            cmask,
            sa,
            sb,
            kind,
        } => Classified::Term(DiagTerm {
            cmask,
            sa,
            sb,
            kind,
        }),
        S1::R1 { bit, cmask, kind } => Classified::Op(Op::Rot1q { bit, cmask, kind }),
        S1::Sw { ta, tb, cmask } => Classified::Op(Op::Swap { ta, tb, cmask }),
        S1::C2 { ta, tb, cmask, m } => Classified::Op(Op::Dense2q { ta, tb, cmask, m }),
        S1::R2 {
            ta,
            tb,
            cmask,
            yy,
            angle,
        } => Classified::Op(Op::Rot2q {
            ta,
            tb,
            cmask,
            yy,
            angle,
        }),
        S1::Kq {
            mat,
            targets,
            cmask,
        } => {
            let k = targets.len();
            let dim = 1usize << k;
            let tmask: usize = targets.iter().map(|&t| 1usize << t).sum();
            let mut offsets = vec![0usize; dim];
            for (b, off) in offsets.iter_mut().enumerate() {
                for (t, &tq) in targets.iter().enumerate() {
                    if b & (1 << t) != 0 {
                        *off |= 1 << tq;
                    }
                }
            }
            Classified::Op(Op::DenseKq {
                mat,
                offsets,
                tmask,
                cmask,
            })
        }
    }
}

/// Row-major 4×4 matrix of RXX(θ) (or RYY when `yy`).
fn rot2q_matrix(yy: bool, theta: f64) -> [C64; 16] {
    let th = theta / 2.0;
    let c = C64::real(th.cos());
    let mut m = [C64::ZERO; 16];
    for d in 0..4 {
        m[d * 4 + d] = c;
    }
    if yy {
        let s = C64::new(0.0, th.sin());
        m[3] = s; // (0,3)
        m[12] = s; // (3,0)
        m[6] = -s; // (1,2)
        m[9] = -s; // (2,1)
    } else {
        let s = C64::new(0.0, -th.sin());
        m[3] = s;
        m[12] = s;
        m[6] = s;
        m[9] = s;
    }
    m
}

/// Dispatches `work` over amplitude slabs aligned to `align`, or serially
/// when the state is small or the pool is one thread wide. Both paths
/// perform identical per-amplitude arithmetic, so the choice never
/// changes the result. Shared with the density-matrix kernels.
pub(crate) fn slabbed<F>(amps: &mut [C64], align: usize, work: F)
where
    F: Fn(usize, &mut [C64]) + Sync,
{
    if amps.len() >= PAR_MIN && par::thread_count() > 1 {
        par::for_slabs(amps, align, work);
    } else {
        work(0, amps);
    }
}

/// One pass applying a whole run of diagonal phase terms. `terms` holds
/// the uncontrolled terms first; `n_plain` is where the controlled ones
/// start.
///
/// The phase of amplitude `i` is `e^{iw(i)}` with `w(i)` the *sum* of the
/// terms' angles, so the pass factors over the index bits instead of
/// multiplying one phase per term per amplitude. Split `i` into its low
/// [`DIAG_LO_BITS`] bits `lo` and the rest (`block`); each uncontrolled
/// term then falls into exactly one bucket:
///
/// * **both parity bits low** — its angles depend only on `lo`: folded
///   once per pass into a shared angle table `wlo[lo]`, realized as the
///   phase table `elo[lo] = cis(wlo[lo])`;
/// * **both bits high (or the single-bit sentinel)** — constant inside a
///   block: one scalar add per block;
/// * **one bit low, one high** — inside a block it degenerates to a
///   single low bit `p`: a per-block angle *slope* on `p`.
///
/// Per block the slopes become eight bit phases `f[p] = cis(slope[p])`,
/// expanded over all `lo` values by the subset-product recurrence
/// `s[m] = s[m & (m-1)] · f[lowest bit of m]` (one complex multiply per
/// entry), and each amplitude is closed with `amps[i] *= elo[lo] · s[lo]`.
/// Total: ~3 complex multiplies per amplitude and a handful of `sin_cos`
/// calls per 2⁸-amplitude block, independent of the run length `T` —
/// versus `T` complex multiplies per amplitude for the naive pass.
///
/// Controlled terms (cp/crz/mcz — rare) run as a separate gated
/// angle-accumulation pass afterwards; diagonal ops commute, so the split
/// is exact. Every block is a pure function of its base index and the
/// block grid is fixed by [`slabbed`]'s alignment, so results stay
/// bit-identical for any thread count.
fn apply_diag(amps: &mut [C64], terms: &[ResolvedDiag], n_plain: usize) {
    let lo_dim = amps.len().min(DIAG_LO);
    let (plain, ctrl) = terms.split_at(n_plain);

    // Pass-wide: angle table over the low field from both-bits-low terms
    // (their `even` parts collect in `wpass`, folded into every block
    // constant), then its phase table.
    let mut wpass = 0.0f64;
    let mut wlo = [0.0f64; DIAG_LO];
    for t in plain {
        let (ba, bb) = (1usize << t.sa, 1usize << t.sb);
        if ba >= lo_dim || bb >= lo_dim {
            continue;
        }
        wpass += t.even;
        let delta = t.odd - t.even;
        let (bl, bh) = (ba.min(bb), ba.max(bb));
        let mut hb = 0;
        while hb < lo_dim {
            // High bit clear: odd parity where the low bit is set.
            let mut s = hb + bl;
            while s < hb + bh {
                for wk in &mut wlo[s..s + bl] {
                    *wk += delta;
                }
                s += 2 * bl;
            }
            // High bit set: odd parity where the low bit is clear.
            let mut s = hb + bh;
            while s < hb + 2 * bh {
                for wk in &mut wlo[s..s + bl] {
                    *wk += delta;
                }
                s += 2 * bl;
            }
            hb += 2 * bh;
        }
    }
    let mut elo = [C64::ONE; DIAG_LO];
    for (e, wk) in elo[..lo_dim].iter_mut().zip(&wlo[..lo_dim]) {
        *e = C64::cis(*wk);
    }

    slabbed(amps, lo_dim, |slab_base, slab| {
        let mut s_tab = [C64::ONE; DIAG_LO];
        for (blk, block) in slab.chunks_mut(lo_dim).enumerate() {
            let bbase = slab_base + blk * lo_dim;
            let mut wblock = wpass;
            let mut slope = [0.0f64; DIAG_LO_BITS];
            for t in plain {
                let (ba, bb) = (1usize << t.sa, 1usize << t.sb);
                match (ba < lo_dim, bb < lo_dim) {
                    (true, true) => {} // already in `elo`
                    (false, false) => {
                        let odd = ((bbase >> t.sa) ^ (bbase >> t.sb)) & 1 == 1;
                        wblock += if odd { t.odd } else { t.even };
                    }
                    (true, false) | (false, true) => {
                        let (vbit, fixed_shift) = if ba < lo_dim {
                            (t.sa, t.sb)
                        } else {
                            (t.sb, t.sa)
                        };
                        if (bbase >> fixed_shift) & 1 == 1 {
                            wblock += t.odd;
                            slope[vbit as usize] += t.even - t.odd;
                        } else {
                            wblock += t.even;
                            slope[vbit as usize] += t.odd - t.even;
                        }
                    }
                }
            }
            let mut f = [C64::ONE; DIAG_LO_BITS];
            for (fp, sp) in f.iter_mut().zip(&slope) {
                *fp = C64::cis(*sp);
            }
            s_tab[0] = C64::cis(wblock);
            for m in 1..lo_dim {
                s_tab[m] = s_tab[m & (m - 1)] * f[m.trailing_zeros() as usize];
            }
            for ((a, e), s) in block.iter_mut().zip(&elo[..lo_dim]).zip(&s_tab[..lo_dim]) {
                *a *= *e * *s;
            }
        }
    });

    if !ctrl.is_empty() {
        // Same 256-aligned grid as every other kernel (per-amplitude work,
        // so any partition is exact — the alignment just keeps splits on
        // cache-block boundaries).
        slabbed(amps, lo_dim, |base, slab| {
            for (k, a) in slab.iter_mut().enumerate() {
                let i = base + k;
                let mut w = 0.0f64;
                for t in ctrl {
                    if i & t.cmask == t.cmask {
                        let odd = ((i >> t.sa) ^ (i >> t.sb)) & 1 == 1;
                        w += if odd { t.odd } else { t.even };
                    }
                }
                if w != 0.0 {
                    *a *= C64::cis(w);
                }
            }
        });
    }
}

/// Runs `f` over every matched (bit-clear, bit-set) half-block pair of a
/// gate on target `bit`: `f(base, h0, h1)` where `h0[k]` (global index
/// `base + k`, bit clear) is the amplitude-pair partner of `h1[k]`.
///
/// The decomposition adapts to where the target bit sits, but the
/// per-pair arithmetic `f` performs is identical either way, so the
/// choice never changes a single rounding:
///
/// * **Low bits / many super-blocks** — contiguous slabs aligned to the
///   block grid, each slab's `2·bit` blocks split at `bit` in place. This
///   is the classic slab path, now with [`BLOCK`]-aligned boundaries.
/// * **High bits, few super-blocks** (top-bit gates, where an aligned
///   contiguous split degenerates to one serial slab) — the two halves
///   of each `2·bit` super-block are chunked in lockstep via
///   [`par::for_slab_pairs`], splitting the *amplitude range of a single
///   gate* across workers.
fn for_pair_halves<F>(amps: &mut [C64], bit: usize, f: F)
where
    F: Fn(usize, &mut [C64], &mut [C64]) + Sync,
{
    let sb = 2 * bit;
    let pair_split = bit >= BLOCK
        && amps.len() >= PAR_MIN
        && amps.len() / sb < PAR_SUPER
        && par::thread_count() > 1;
    if pair_split {
        for (sbi, block) in amps.chunks_mut(sb).enumerate() {
            let (h0, h1) = block.split_at_mut(bit);
            par::for_slab_pairs(h0, h1, BLOCK, |off, a, b| f(sbi * sb + off, a, b));
        }
    } else {
        slabbed(amps, sb.max(BLOCK), |slab_base, slab| {
            for (bi, block) in slab.chunks_mut(sb).enumerate() {
                let (h0, h1) = block.split_at_mut(bit);
                f(slab_base + bi * sb, h0, h1);
            }
        });
    }
}

/// Runs `f` over every matched quadruple chunk of a two-qubit op on
/// target bits `ba`/`bb`: `f(base, c00, c01, c10, c11)` where, with
/// `lo`/`hi` the smaller/larger bit, `c00[k]` (global index `base + k`,
/// both bits clear) partners `c01[k]` (`+lo`), `c10[k]` (`+hi`) and
/// `c11[k]` (`+lo+hi`).
///
/// When both strides exceed the cache block and the super-blocks are too
/// few to feed the pool, the four bit-combination stripes of each
/// super-block are chunked in lockstep ([`par::for_slab_quads`]);
/// otherwise the `lo` interleave is peeled inside [`for_pair_halves`]'s
/// chunk pairs. Every path hands `f` four contiguous streams on the same
/// 256-aligned grid — the cache-blocked form of the 2q gather/scatter —
/// and `f`'s per-quad arithmetic is identical across paths.
fn quad_slabbed<F>(amps: &mut [C64], ba: usize, bb: usize, f: F)
where
    F: Fn(usize, &mut [C64], &mut [C64], &mut [C64], &mut [C64]) + Sync,
{
    let (lo, hi) = (ba.min(bb), ba.max(bb));
    let quad_split = lo >= BLOCK
        && amps.len() >= PAR_MIN
        && amps.len() / (2 * hi) < PAR_SUPER
        && par::thread_count() > 1;
    if quad_split {
        for (sbi, block) in amps.chunks_mut(2 * hi).enumerate() {
            let (l, h) = block.split_at_mut(hi);
            for (si, (lsub, hsub)) in l.chunks_mut(2 * lo).zip(h.chunks_mut(2 * lo)).enumerate() {
                let (c00, c01) = lsub.split_at_mut(lo);
                let (c10, c11) = hsub.split_at_mut(lo);
                let base = sbi * 2 * hi + si * 2 * lo;
                par::for_slab_quads(c00, c01, c10, c11, BLOCK, |off, a, b, c, d| {
                    f(base + off, a, b, c, d)
                });
            }
        }
    } else {
        for_pair_halves(amps, hi, |base, l, h| {
            for (si, (lsub, hsub)) in l.chunks_mut(2 * lo).zip(h.chunks_mut(2 * lo)).enumerate() {
                let (c00, c01) = lsub.split_at_mut(lo);
                let (c10, c11) = hsub.split_at_mut(lo);
                f(base + si * 2 * lo, c00, c01, c10, c11);
            }
        });
    }
}

/// One 2×2 application to an amplitude pair as fused multiply-adds — the
/// single arithmetic expression shared by every dense-1q path (serial,
/// slab, pair-split, controlled), which is what keeps compiled results
/// bit-identical however the state is partitioned.
#[inline(always)]
fn mat2_apply(m: &[C64; 4], a0: C64, a1: C64) -> (C64, C64) {
    (m[0].mul_add(a0, m[1] * a1), m[2].mul_add(a0, m[3] * a1))
}

/// One 4×4 application to an amplitude quadruple as a fused multiply-add
/// chain per row; shared by every dense-2q path like [`mat2_apply`].
#[inline(always)]
fn mat4_apply(m: &[C64; 16], a0: C64, a1: C64, a2: C64, a3: C64) -> (C64, C64, C64, C64) {
    (
        m[0].mul_add(a0, m[1].mul_add(a1, m[2].mul_add(a2, m[3] * a3))),
        m[4].mul_add(a0, m[5].mul_add(a1, m[6].mul_add(a2, m[7] * a3))),
        m[8].mul_add(a0, m[9].mul_add(a1, m[10].mul_add(a2, m[11] * a3))),
        m[12].mul_add(a0, m[13].mul_add(a1, m[14].mul_add(a2, m[15] * a3))),
    )
}

/// The hottest loop in the engine: an uncontrolled dense 1q gate over
/// matched half-blocks, manually unrolled four pairs deep so the four
/// complex-FMA chains pipeline independently. The remainder loop reuses
/// [`mat2_apply`] verbatim, so unrolling never changes a result.
fn kernel_1q(h0: &mut [C64], h1: &mut [C64], m: &[C64; 4]) {
    let n = h0.len();
    debug_assert_eq!(n, h1.len());
    let mut k = 0;
    while k + 4 <= n {
        let (a, b) = (
            mat2_apply(m, h0[k], h1[k]),
            mat2_apply(m, h0[k + 1], h1[k + 1]),
        );
        let (c, d) = (
            mat2_apply(m, h0[k + 2], h1[k + 2]),
            mat2_apply(m, h0[k + 3], h1[k + 3]),
        );
        h0[k] = a.0;
        h1[k] = a.1;
        h0[k + 1] = b.0;
        h1[k + 1] = b.1;
        h0[k + 2] = c.0;
        h1[k + 2] = c.1;
        h0[k + 3] = d.0;
        h1[k + 3] = d.1;
        k += 4;
    }
    while k < n {
        let r = mat2_apply(m, h0[k], h1[k]);
        h0[k] = r.0;
        h1[k] = r.1;
        k += 1;
    }
}

/// (Controlled) dense 1q kernel over pairs `(i, i|bit)`.
fn apply_1q(amps: &mut [C64], bit: usize, cmask: usize, m: &[C64; 4]) {
    if cmask == 0 {
        for_pair_halves(amps, bit, |_, h0, h1| kernel_1q(h0, h1, m));
    } else {
        for_pair_halves(amps, bit, |base, h0, h1| {
            for k in 0..h0.len() {
                if (base + k) & cmask == cmask {
                    let r = mat2_apply(m, h0[k], h1[k]);
                    h0[k] = r.0;
                    h1[k] = r.1;
                }
            }
        });
    }
}

/// (Multi-controlled) X kernel: swaps pairs `(i, i|bit)`.
fn apply_flip(amps: &mut [C64], bit: usize, cmask: usize) {
    if cmask == 0 {
        for_pair_halves(amps, bit, |_, h0, h1| {
            for (a, b) in h0.iter_mut().zip(h1.iter_mut()) {
                std::mem::swap(a, b);
            }
        });
    } else {
        for_pair_halves(amps, bit, |base, h0, h1| {
            for k in 0..h0.len() {
                if (base + k) & cmask == cmask {
                    std::mem::swap(&mut h0[k], &mut h1[k]);
                }
            }
        });
    }
}

/// (Controlled) SWAP kernel: exchanges `i` (ta set, tb clear) with
/// `i ^ ta ^ tb` — elementwise `c01[k] ↔ c10[k]` in quadruple form.
/// `cmask` is disjoint from both targets, so the control test reads the
/// shared non-target bits `base + k`.
fn apply_swap(amps: &mut [C64], ta: usize, tb: usize, cmask: usize) {
    quad_slabbed(amps, ta, tb, |base, _c00, c01, c10, _c11| {
        if cmask == 0 {
            for (a, b) in c01.iter_mut().zip(c10.iter_mut()) {
                std::mem::swap(a, b);
            }
        } else {
            for k in 0..c01.len() {
                if (base + k) & cmask == cmask {
                    std::mem::swap(&mut c01[k], &mut c10[k]);
                }
            }
        }
    });
}

/// (Controlled) dense 2q kernel over quadruples; sub-index bit 0 is `ta`.
/// [`quad_slabbed`] delivers chunks in lo/hi stride order, so the middle
/// two are swapped into `ta`/`tb` order before the 4×4 rows apply.
fn apply_2q(amps: &mut [C64], ta: usize, tb: usize, cmask: usize, m: &[C64; 16]) {
    quad_slabbed(amps, ta, tb, |base, c00, clo, chi, c11| {
        let (c01, c10) = if ta < tb { (clo, chi) } else { (chi, clo) };
        if cmask == 0 {
            for k in 0..c00.len() {
                let r = mat4_apply(m, c00[k], c01[k], c10[k], c11[k]);
                c00[k] = r.0;
                c01[k] = r.1;
                c10[k] = r.2;
                c11[k] = r.3;
            }
        } else {
            for k in 0..c00.len() {
                if (base + k) & cmask == cmask {
                    let r = mat4_apply(m, c00[k], c01[k], c10[k], c11[k]);
                    c00[k] = r.0;
                    c01[k] = r.1;
                    c10[k] = r.2;
                    c11[k] = r.3;
                }
            }
        }
    });
}

/// Generic dense k-qubit kernel with precomputed scatter offsets; serial
/// (the scratch buffers are shared across the whole pass).
fn apply_kq(
    amps: &mut [C64],
    mat: &CMatrix,
    offsets: &[usize],
    tmask: usize,
    cmask: usize,
    gather: &mut [C64],
    out: &mut [C64],
) {
    let dim = offsets.len();
    let mat_data = mat.as_slice();
    for i in 0..amps.len() {
        if i & tmask == 0 && i & cmask == cmask {
            for (s, &off) in gather.iter_mut().zip(offsets) {
                *s = amps[i | off];
            }
            for (row, o) in out.iter_mut().enumerate() {
                let mut acc = C64::ZERO;
                let mrow = &mat_data[row * dim..(row + 1) * dim];
                for (mv, sv) in mrow.iter().zip(gather.iter()) {
                    acc += *mv * *sv;
                }
                *o = acc;
            }
            for (v, &off) in out.iter().zip(offsets) {
                amps[i | off] = *v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Runs `c` through the per-instruction reference path.
    fn reference(c: &Circuit, params: &[f64]) -> StateVector {
        let mut s = StateVector::zero(c.n_qubits());
        for instr in c.instrs() {
            s.apply(instr, params);
        }
        s
    }

    fn assert_states_close(a: &StateVector, b: &StateVector, tol: f64) {
        for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
            assert!(
                x.approx_eq(*y, tol),
                "amplitude {i} differs: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn qaoa_cost_layer_compiles_to_one_diagonal_pass() {
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        let g = c.new_param();
        for i in 0..6 {
            for j in (i + 1)..6 {
                c.rzz(i, j, g);
            }
        }
        let cc = c.compile();
        // 6 H ops + 1 diagonal run of 15 RZZ terms.
        assert_eq!(cc.n_ops(), 7, "ops: {:?}", cc.ops);
        assert_eq!(cc.n_diag_terms(), 15);
        assert_states_close(&cc.execute(&[0.37]), &reference(&c, &[0.37]), 1e-12);
    }

    #[test]
    fn adjacent_constant_rotations_fuse() {
        let mut c = Circuit::new(3);
        // Interleaved per-qubit walls: each qubit's RY·RZ pair fuses even
        // though other qubits' gates sit between them in program order.
        for q in 0..3 {
            c.ry(q, 0.3 + q as f64);
        }
        for q in 0..3 {
            c.rz(q, 1.1 - q as f64);
        }
        let cc = c.compile();
        assert_eq!(cc.n_ops(), 3, "one fused dense op per qubit: {:?}", cc.ops);
        assert_states_close(&cc.execute(&[]), &reference(&c, &[]), 1e-12);
    }

    #[test]
    fn hh_cancels_and_hxh_becomes_diagonal() {
        let mut c = Circuit::new(1);
        c.h(0).h(0); // fuses to identity, dropped
        let cc = c.compile();
        assert_eq!(cc.n_ops(), 0);

        let mut c = Circuit::new(1);
        c.h(0).x(0).h(0); // = Z, a diagonal term
        let cc = c.compile();
        assert_eq!(cc.n_ops(), 1);
        assert_eq!(cc.n_diag_terms(), 1);
        let mut s = StateVector::from_amplitudes(vec![C64::real(0.6), C64::real(0.8)]);
        cc.run(&mut s, &[]);
        assert!(s.amplitudes()[0].approx_eq(C64::real(0.6), 1e-12));
        assert!(s.amplitudes()[1].approx_eq(C64::real(-0.8), 1e-12));
    }

    #[test]
    fn x_lowers_to_flip_and_controls_are_respected() {
        let mut c = Circuit::new(3);
        c.x(0).cx(0, 1).ccx(0, 1, 2);
        let cc = c.compile();
        assert!(cc.ops.iter().all(|op| matches!(op, Op::Flip { .. })));
        let s = cc.execute(&[]);
        assert!((s.probabilities()[0b111] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn every_gate_kind_matches_reference() {
        let mut c = Circuit::new(4);
        let p0 = c.new_param();
        let p1 = c.new_param();
        c.h(0).x(1).y(2).z(3).s(0).sdg(1).t(2);
        c.push(Gate::Tdg, vec![], vec![3]);
        c.push(Gate::SX, vec![], vec![0]);
        c.rx(1, p0).ry(2, p1).rz(3, p0).p(0, p1);
        c.u3(1, p0, 0.2, p1);
        c.swap(0, 2).cswap(3, 0, 1);
        c.rzz(0, 1, p0).rxx(1, 2, p1);
        c.push(Gate::RYY(Angle::Const(0.4)), vec![], vec![2, 3]);
        c.cx(0, 3)
            .ccx(1, 2, 0)
            .mcz(&[0, 1], 2)
            .crz(0, 1, p1)
            .cp(1, 2, 0.9);
        let params = [0.83, -1.27];
        assert_states_close(
            &c.compile().execute(&params),
            &reference(&c, &params),
            1e-10,
        );
    }

    #[test]
    fn generic_three_qubit_unitary_uses_kq_kernel() {
        // An exact 8×8 permutation-with-phases unitary exercises DenseKq.
        let mut mat = CMatrix::zeros(8, 8);
        for i in 0..8 {
            mat[(i, (i + 3) % 8)] = C64::cis(0.2 * i as f64);
        }
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        c.push(Gate::Unitary(mat), vec![3], vec![0, 1, 2]);
        let cc = c.compile();
        assert!(cc.ops.iter().any(|op| matches!(op, Op::DenseKq { .. })));
        assert_states_close(&cc.execute(&[]), &reference(&c, &[]), 1e-10);
    }

    #[test]
    fn compiled_run_is_reusable_across_params() {
        let mut c = Circuit::new(3);
        let p = c.new_param();
        c.h(0).ry(1, p).rzz(0, 1, p).cx(1, 2);
        let cc = c.compile();
        for k in 0..5 {
            let params = [0.4 * k as f64 - 1.0];
            assert_states_close(&cc.execute(&params), &reference(&c, &params), 1e-12);
        }
    }

    #[test]
    fn parameterized_diag_does_not_fuse_into_dense_neighbours() {
        let mut c = Circuit::new(1);
        let p = c.new_param();
        c.h(0).rz(0, p).h(0);
        let cc = c.compile();
        // The two H gates must NOT fuse across the parameterized RZ.
        assert_eq!(cc.n_ops(), 3);
        assert_states_close(&cc.execute(&[0.7]), &reference(&c, &[0.7]), 1e-12);
    }

    #[test]
    fn deep_circuit_norm_preserved_and_matches_reference() {
        let mut c = Circuit::new(5);
        for layer in 0..6 {
            for q in 0..5 {
                c.ry(q, 0.3 * layer as f64 + q as f64);
                c.rz(q, 0.1 * (layer + q) as f64);
            }
            for q in 0..4 {
                c.cx(q, q + 1);
            }
            c.rzz(0, 4, 0.5);
        }
        let cc = c.compile();
        let s = cc.execute(&[]);
        assert!((s.norm() - 1.0).abs() < 1e-10);
        assert_states_close(&s, &reference(&c, &[]), 1e-10);
    }

    #[test]
    fn u3_with_pi_angles_round_trips() {
        // U3(π/2, 0, π) = H; compiled constant U3 fuses with a real H to
        // identity.
        let mut c = Circuit::new(1);
        c.u3(0, PI / 2.0, 0.0, PI).h(0);
        let cc = c.compile();
        assert_eq!(cc.n_ops(), 0, "H·H ≈ I should be dropped: {:?}", cc.ops);
    }
}
