//! Density-matrix simulation engine for noisy (mixed-state) circuits.
//!
//! Stores the full 2ⁿ×2ⁿ density matrix, so it is intended for the small
//! qubit counts (≤ ~10) where NISQ noise studies live. Gates are applied as
//! `ρ → UρU†` and noise as Kraus channels `ρ → Σ KᵢρKᵢ†`.

use crate::circuit::{Circuit, Instr};
use crate::compile::slabbed;
use crate::gate::Gate;
use crate::pauli::{Pauli, PauliString, PauliSum};
use crate::statevector::StateVector;
use qmldb_math::{CMatrix, C64};

/// A mixed quantum state on `n` qubits.
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    n: usize,
    dim: usize,
    data: Vec<C64>, // row-major dim × dim
}

impl DensityMatrix {
    /// The pure state |0…0⟩⟨0…0|.
    pub fn zero(n: usize) -> Self {
        assert!(n <= 13, "density matrix for {n} qubits is too large");
        let dim = 1usize << n;
        let mut data = vec![C64::ZERO; dim * dim];
        data[0] = C64::ONE;
        DensityMatrix { n, dim, data }
    }

    /// The pure state |ψ⟩⟨ψ| of a state vector.
    pub fn from_pure(state: &StateVector) -> Self {
        let n = state.n_qubits();
        let dim = 1usize << n;
        let amps = state.amplitudes();
        let mut data = vec![C64::ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                data[i * dim + j] = amps[i] * amps[j].conj();
            }
        }
        DensityMatrix { n, dim, data }
    }

    /// The maximally mixed state `I / 2ⁿ`.
    pub fn maximally_mixed(n: usize) -> Self {
        let dim = 1usize << n;
        let mut dm = DensityMatrix::zero(n);
        dm.data[0] = C64::ZERO;
        let p = C64::real(1.0 / dim as f64);
        for i in 0..dim {
            dm.data[i * dim + i] = p;
        }
        dm
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Matrix element `ρ[i, j]`.
    pub fn get(&self, i: usize, j: usize) -> C64 {
        self.data[i * self.dim + j]
    }

    /// The diagonal as measurement probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim).map(|i| self.get(i, i).re).collect()
    }

    /// Trace (should always be 1).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|i| self.get(i, i).re).sum()
    }

    /// Purity `tr(ρ²)`; 1 for pure states, `1/2ⁿ` for maximally mixed.
    pub fn purity(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Fidelity `⟨ψ|ρ|ψ⟩` with a pure reference state.
    pub fn fidelity_pure(&self, psi: &StateVector) -> f64 {
        assert_eq!(self.n, psi.n_qubits(), "qubit count mismatch");
        let amps = psi.amplitudes();
        let mut acc = C64::ZERO;
        for i in 0..self.dim {
            let mut row = C64::ZERO;
            for j in 0..self.dim {
                row += self.get(i, j) * amps[j];
            }
            acc += amps[i].conj() * row;
        }
        acc.re
    }

    /// Runs a circuit (gates only — attach noise via
    /// [`crate::noise::NoiseModel`] and [`crate::exec::Simulator`]).
    pub fn run(&mut self, circuit: &Circuit, params: &[f64]) {
        assert_eq!(self.n, circuit.n_qubits(), "circuit qubit count mismatch");
        for instr in circuit.instrs() {
            self.apply(instr, params);
        }
    }

    /// Applies a unitary instruction: `ρ → UρU†`.
    ///
    /// Diagonal gates (Z/S/T/P/RZ/RZZ and their controlled forms) take a
    /// single elementwise pass `ρ[r,c] ← d(r)·ρ[r,c]·d̄(c)`; other 1q
    /// gates use specialized row-pair/column-pair kernels; only genuine
    /// multi-qubit unitaries fall back to the generic gather/scatter
    /// transforms.
    pub fn apply(&mut self, instr: &Instr, params: &[f64]) {
        let cmask: usize = instr.controls.iter().map(|&c| 1usize << c).sum();
        if let Some((sa, sb, even, odd)) = diag_phases(&instr.gate, params, &instr.targets, self.n)
        {
            apply_diag(&mut self.data, self.dim, cmask, sa, sb, even, odd);
            return;
        }
        let mat = instr.gate.matrix(params);
        transform_rows_buf(
            &mut self.data,
            self.n,
            self.dim,
            &mat,
            &instr.targets,
            cmask,
        );
        transform_cols_buf(
            &mut self.data,
            self.n,
            self.dim,
            &mat,
            &instr.targets,
            cmask,
        );
    }

    /// Applies a Kraus channel `ρ → Σ KᵢρKᵢ†` on the given target qubits.
    ///
    /// Uses one reusable scratch buffer: each Kraus term copies ρ into the
    /// scratch, transforms it in place, and accumulates — instead of
    /// cloning the whole density matrix once per operator.
    pub fn apply_kraus(&mut self, kraus: &[CMatrix], targets: &[usize]) {
        let mut acc = vec![C64::ZERO; self.data.len()];
        let mut scratch = self.data.clone();
        for (ki, k) in kraus.iter().enumerate() {
            if ki > 0 {
                scratch.copy_from_slice(&self.data);
            }
            transform_rows_buf(&mut scratch, self.n, self.dim, k, targets, 0);
            transform_cols_buf(&mut scratch, self.n, self.dim, k, targets, 0);
            for (a, t) in acc.iter_mut().zip(&scratch) {
                *a += *t;
            }
        }
        self.data = acc;
    }

    /// `tr(Pρ)` for a Pauli string.
    pub fn expectation_string(&self, p: &PauliString) -> f64 {
        let mut flip = 0usize;
        for &(q, op) in p.ops() {
            if op != Pauli::Z {
                flip |= 1 << q;
            }
        }
        let mut acc = C64::ZERO;
        for j in 0..self.dim {
            let mut phase = C64::ONE;
            for &(q, op) in p.ops() {
                let bit = (j >> q) & 1;
                match op {
                    Pauli::X => {}
                    Pauli::Y => phase *= if bit == 0 { C64::I } else { -C64::I },
                    Pauli::Z => {
                        if bit == 1 {
                            phase = -phase;
                        }
                    }
                }
            }
            acc += phase * self.get(j, j ^ flip);
        }
        acc.re
    }

    /// `tr(Hρ)` for a Pauli sum.
    pub fn expectation(&self, h: &PauliSum) -> f64 {
        h.terms()
            .iter()
            .map(|(c, p)| c * self.expectation_string(p))
            .sum()
    }
}

/// Diagonal phases of a gate, if it is diagonal in the computational
/// basis: `(sa, sb, even, odd)` with parity = `((i>>sa)^(i>>sb)) & 1`
/// (single-bit gates set `sb = n`, a bit that is always clear).
fn diag_phases(
    gate: &Gate,
    params: &[f64],
    targets: &[usize],
    n: usize,
) -> Option<(u32, u32, C64, C64)> {
    let one = C64::ONE;
    let q = targets[0] as u32;
    let sn = n as u32;
    match gate {
        Gate::Z => Some((q, sn, one, -one)),
        Gate::S => Some((q, sn, one, C64::I)),
        Gate::Sdg => Some((q, sn, one, -C64::I)),
        Gate::T => Some((q, sn, one, C64::cis(std::f64::consts::FRAC_PI_4))),
        Gate::Tdg => Some((q, sn, one, C64::cis(-std::f64::consts::FRAC_PI_4))),
        Gate::P(a) => Some((q, sn, one, C64::cis(a.resolve(params)))),
        Gate::RZ(a) => {
            let th = a.resolve(params) / 2.0;
            Some((q, sn, C64::cis(-th), C64::cis(th)))
        }
        Gate::RZZ(a) => {
            let th = a.resolve(params) / 2.0;
            Some((q, targets[1] as u32, C64::cis(-th), C64::cis(th)))
        }
        _ => None,
    }
}

/// One elementwise pass for a diagonal gate: `ρ[r,c] ← d(r)·ρ[r,c]·d̄(c)`.
fn apply_diag(data: &mut [C64], dim: usize, cmask: usize, sa: u32, sb: u32, even: C64, odd: C64) {
    let phase = |i: usize| -> C64 {
        if i & cmask == cmask {
            if ((i >> sa) ^ (i >> sb)) & 1 == 1 {
                odd
            } else {
                even
            }
        } else {
            C64::ONE
        }
    };
    slabbed(data, dim, |base, slab| {
        for (ri, row) in slab.chunks_mut(dim).enumerate() {
            let dr = phase(base / dim + ri);
            for (c, a) in row.iter_mut().enumerate() {
                *a *= dr * phase(c).conj();
            }
        }
    });
}

/// Left-multiplies by the (controlled) unitary: `ρ → Uρ`. Single-qubit
/// gates use a row-pair kernel over contiguous rows (parallel over row
/// slabs); larger unitaries take the generic gather/scatter path with
/// base indices hoisted out of the column loop.
fn transform_rows_buf(
    data: &mut [C64],
    n: usize,
    dim: usize,
    mat: &CMatrix,
    targets: &[usize],
    cmask: usize,
) {
    if targets.len() == 1 {
        let bit = 1usize << targets[0];
        let m = [mat[(0, 0)], mat[(0, 1)], mat[(1, 0)], mat[(1, 1)]];
        let stride = 2 * bit * dim;
        slabbed(data, stride, |base, slab| {
            let mut blk = 0;
            while blk + stride <= slab.len() {
                let (lo, hi) = slab[blk..blk + stride].split_at_mut(bit * dim);
                let r0 = (base + blk) / dim;
                for (ri, (row0, row1)) in lo.chunks_mut(dim).zip(hi.chunks_mut(dim)).enumerate() {
                    if (r0 + ri) & cmask == cmask {
                        for (a0, a1) in row0.iter_mut().zip(row1.iter_mut()) {
                            let (x0, x1) = (*a0, *a1);
                            *a0 = m[0] * x0 + m[1] * x1;
                            *a1 = m[2] * x0 + m[3] * x1;
                        }
                    }
                }
                blk += stride;
            }
        });
        return;
    }
    let k = targets.len();
    let sub = 1usize << k;
    let tmask: usize = targets.iter().map(|&t| 1usize << t).sum();
    let bases: Vec<usize> = (0..dim >> k)
        .map(|outer| spread_bits(outer, tmask, n))
        .filter(|b| b & cmask == cmask)
        .collect();
    let offs: Vec<usize> = (0..sub).map(|b| spread_sub(b, targets)).collect();
    let mut gathered = vec![C64::ZERO; sub];
    for col in 0..dim {
        for &base in &bases {
            for (g, &off) in gathered.iter_mut().zip(&offs) {
                *g = data[(base | off) * dim + col];
            }
            for (b, &off) in offs.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (kk, g) in gathered.iter().enumerate() {
                    acc += mat[(b, kk)] * *g;
                }
                data[(base | off) * dim + col] = acc;
            }
        }
    }
}

/// Right-multiplies by the (controlled) unitary's dagger: `ρ → ρU†`.
/// Single-qubit gates use a column-pair kernel applied row by row
/// (parallel over row slabs); larger unitaries take the generic path with
/// hoisted base indices.
fn transform_cols_buf(
    data: &mut [C64],
    n: usize,
    dim: usize,
    mat: &CMatrix,
    targets: &[usize],
    cmask: usize,
) {
    if targets.len() == 1 {
        let bit = 1usize << targets[0];
        let m = [
            mat[(0, 0)].conj(),
            mat[(0, 1)].conj(),
            mat[(1, 0)].conj(),
            mat[(1, 1)].conj(),
        ];
        slabbed(data, dim, |_base, slab| {
            for row in slab.chunks_mut(dim) {
                let mut lo = 0;
                while lo + 2 * bit <= dim {
                    let (h0, h1) = row[lo..lo + 2 * bit].split_at_mut(bit);
                    for (kk, (a0, a1)) in h0.iter_mut().zip(h1.iter_mut()).enumerate() {
                        if (lo + kk) & cmask == cmask {
                            let (x0, x1) = (*a0, *a1);
                            *a0 = m[0] * x0 + m[1] * x1;
                            *a1 = m[2] * x0 + m[3] * x1;
                        }
                    }
                    lo += 2 * bit;
                }
            }
        });
        return;
    }
    let k = targets.len();
    let sub = 1usize << k;
    let tmask: usize = targets.iter().map(|&t| 1usize << t).sum();
    let bases: Vec<usize> = (0..dim >> k)
        .map(|outer| spread_bits(outer, tmask, n))
        .filter(|b| b & cmask == cmask)
        .collect();
    let offs: Vec<usize> = (0..sub).map(|b| spread_sub(b, targets)).collect();
    let mut gathered = vec![C64::ZERO; sub];
    for row in 0..dim {
        let row_base = row * dim;
        for &base in &bases {
            for (g, &off) in gathered.iter_mut().zip(&offs) {
                *g = data[row_base + (base | off)];
            }
            for (b, &off) in offs.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (kk, g) in gathered.iter().enumerate() {
                    acc += mat[(b, kk)].conj() * *g;
                }
                data[row_base + (base | off)] = acc;
            }
        }
    }
}

/// Spreads the bits of `value` into the positions of `0..n` *not* covered by
/// `mask`.
fn spread_bits(value: usize, mask: usize, n: usize) -> usize {
    let mut out = 0usize;
    let mut rem = value;
    for pos in 0..n {
        let b = 1usize << pos;
        if mask & b == 0 {
            if rem & 1 != 0 {
                out |= b;
            }
            rem >>= 1;
        }
    }
    out
}

/// Spreads a `k`-bit sub-index into the target qubit positions.
fn spread_sub(b: usize, targets: &[usize]) -> usize {
    let mut out = 0usize;
    for (t, &tq) in targets.iter().enumerate() {
        if b & (1 << t) != 0 {
            out |= 1 << tq;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::noise::Channel;

    #[test]
    fn zero_state_has_unit_trace_and_purity() {
        let dm = DensityMatrix::zero(3);
        assert!((dm.trace() - 1.0).abs() < 1e-12);
        assert!((dm.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.8).ccx(0, 1, 2).rzz(0, 2, 0.3);

        let mut sv = StateVector::zero(3);
        sv.run(&c, &[]);
        let mut dm = DensityMatrix::zero(3);
        dm.run(&c, &[]);

        let expect = DensityMatrix::from_pure(&sv);
        for i in 0..8 {
            for j in 0..8 {
                assert!(
                    dm.get(i, j).approx_eq(expect.get(i, j), 1e-10),
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn purity_preserved_by_unitaries() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1);
        let mut dm = DensityMatrix::zero(2);
        dm.run(&c, &[]);
        assert!((dm.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn depolarizing_noise_reduces_purity() {
        let mut dm = DensityMatrix::zero(1);
        let mut c = Circuit::new(1);
        c.h(0);
        dm.run(&c, &[]);
        let before = dm.purity();
        dm.apply_kraus(&Channel::Depolarizing(0.2).kraus(), &[0]);
        assert!((dm.trace() - 1.0).abs() < 1e-10, "trace preserved");
        assert!(dm.purity() < before, "purity must drop");
    }

    #[test]
    fn full_depolarizing_gives_maximally_mixed() {
        let mut dm = DensityMatrix::zero(1);
        // p = 0.75 sends a single qubit exactly to I/2 under the standard
        // depolarizing parameterization.
        dm.apply_kraus(&Channel::Depolarizing(0.75).kraus(), &[0]);
        let mm = DensityMatrix::maximally_mixed(1);
        for i in 0..2 {
            for j in 0..2 {
                assert!(dm.get(i, j).approx_eq(mm.get(i, j), 1e-10));
            }
        }
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut dm = DensityMatrix::zero(1);
        let mut c = Circuit::new(1);
        c.x(0);
        dm.run(&c, &[]);
        dm.apply_kraus(&Channel::AmplitudeDamping(0.3).kraus(), &[0]);
        let p = dm.probabilities();
        assert!((p[1] - 0.7).abs() < 1e-10);
        assert!((p[0] - 0.3).abs() < 1e-10);
    }

    #[test]
    fn bit_flip_mixes_populations() {
        let mut dm = DensityMatrix::zero(1);
        dm.apply_kraus(&Channel::BitFlip(0.25).kraus(), &[0]);
        let p = dm.probabilities();
        assert!((p[0] - 0.75).abs() < 1e-10);
        assert!((p[1] - 0.25).abs() < 1e-10);
    }

    #[test]
    fn expectation_matches_statevector_for_pure() {
        let mut c = Circuit::new(2);
        c.ry(0, 0.9).cx(0, 1);
        let mut sv = StateVector::zero(2);
        sv.run(&c, &[]);
        let dm = DensityMatrix::from_pure(&sv);
        let h = PauliSum::from_terms(vec![
            (0.7, PauliString::z(0)),
            (-0.2, PauliString::zz(0, 1)),
            (0.4, PauliString::x(1)),
        ]);
        assert!((dm.expectation(&h) - h.expectation(&sv)).abs() < 1e-10);
    }

    #[test]
    fn fidelity_pure_detects_orthogonality() {
        let dm = DensityMatrix::zero(1);
        assert!((dm.fidelity_pure(&StateVector::zero(1)) - 1.0).abs() < 1e-12);
        assert!(dm.fidelity_pure(&StateVector::basis(1, 1)).abs() < 1e-12);
    }

    #[test]
    fn maximally_mixed_has_min_purity() {
        let dm = DensityMatrix::maximally_mixed(2);
        assert!((dm.purity() - 0.25).abs() < 1e-12);
        assert!((dm.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_fast_path_matches_statevector() {
        // Every diagonal kind, controlled and not, against the pure-state
        // reference.
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        c.z(0).s(1).t(2).p(0, 0.6).rz(1, -0.9).rzz(0, 2, 1.3);
        c.cz(0, 1).cp(1, 2, 0.4).crz(2, 0, 0.8);
        let mut sv = StateVector::zero(3);
        sv.run(&c, &[]);
        let mut dm = DensityMatrix::zero(3);
        dm.run(&c, &[]);
        let expect = DensityMatrix::from_pure(&sv);
        for i in 0..8 {
            for j in 0..8 {
                assert!(
                    dm.get(i, j).approx_eq(expect.get(i, j), 1e-10),
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn two_qubit_kraus_operator_uses_generic_path() {
        // A unitary "channel" with a single 4×4 Kraus operator must act
        // exactly like the gate it wraps.
        let mut c = Circuit::new(3);
        c.h(0).ry(1, 0.7).cx(1, 2);
        let mut dm = DensityMatrix::zero(3);
        dm.run(&c, &[]);
        let mut expect = dm.clone();
        let u = crate::gate::Gate::RXX(crate::gate::Angle::Const(0.9)).matrix(&[]);
        let instr = crate::circuit::Instr {
            gate: crate::gate::Gate::Unitary(u.clone()),
            controls: vec![],
            targets: vec![0, 2],
        };
        expect.apply(&instr, &[]);
        dm.apply_kraus(&[u], &[0, 2]);
        for i in 0..8 {
            for j in 0..8 {
                assert!(
                    dm.get(i, j).approx_eq(expect.get(i, j), 1e-10),
                    "mismatch at ({i},{j})"
                );
            }
        }
        assert!((dm.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn controlled_gate_on_density_matrix() {
        // CX on |+0>: should produce the Bell state density matrix.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut dm = DensityMatrix::zero(2);
        dm.run(&c, &[]);
        let p = dm.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-10);
        assert!((p[0b11] - 0.5).abs() < 1e-10);
        // Off-diagonal coherence present (pure superposition).
        assert!((dm.get(0, 3).re - 0.5).abs() < 1e-10);
    }
}
