//! Adjoint-mode (reverse) differentiation of circuit expectation values.
//!
//! The parameter-shift rule costs two full circuit runs per parameterized
//! gate occurrence — `2k` runs for `k` occurrences. Adjoint
//! differentiation computes the *entire* gradient of
//! `E(θ) = ⟨0|U†(θ) H U(θ)|0⟩` in a constant number of state-vector
//! sweeps, independent of `k`:
//!
//! 1. **Forward**: run the compiled circuit once, keeping the final state
//!    `|ψ⟩ = U(θ)|0⟩`.
//! 2. **Co-state**: form `|λ⟩ = H|ψ⟩` via [`PauliSum::apply_to`] (`λ` is
//!    not normalized — `H` is Hermitian, not unitary).
//! 3. **Backward**: walk the gates in reverse. At gate `j`, `|ψ⟩` holds
//!    the state *after* gate `j` and `|λ⟩` holds `H U|0⟩` pulled back
//!    through gates `j+1 … m`. If gate `j` is a rotation
//!    `exp(−i·a/2·G)` with `a = mult·θ[idx] + offset`, its contribution
//!    is `grad[idx] += mult · Im ⟨λ| Π_c G |ψ⟩`, where `G` is the
//!    rotation's Pauli generator and `Π_c` projects onto the gate's
//!    control condition (exact for controlled rotations, where the
//!    two-term shift rule does not even apply). Then both `|ψ⟩` and
//!    `|λ⟩` are pulled back through the daggered gate and the walk
//!    continues.
//!
//! Every step is serial over gates and amplitudes, so the result is
//! bit-identical regardless of thread count; the forward compiled run
//! inherits the slab-parallel determinism contract of
//! [`crate::compile`]. Derivation sketch: `∂E/∂a = 2·Re⟨ψ_m|H·g_m…g_{j+1}
//! (−i/2)(Π_c⊗G) |ψ_j⟩ = Im⟨λ_j|Π_c G|ψ_j⟩`, using that `H` and
//! `Π_c⊗G` are Hermitian.

use crate::circuit::{Circuit, Instr};
use crate::gate::{Angle, Gate};
use crate::pauli::{Pauli, PauliString, PauliSum};
use crate::statevector::StateVector;
use crate::CompiledCircuit;
use qmldb_math::C64;

/// One parameterized gate occurrence, with its generator's action
/// precomputed as bit masks (same encoding as [`PauliString`]:
/// `G|j⟩ = global · (−1)^popcount(j & pmask) · |j ^ flip⟩`).
struct Occurrence {
    /// Position in the instruction list.
    at: usize,
    /// Source parameter index.
    idx: usize,
    /// Chain-rule multiplier from the affine angle `mult·θ + offset`.
    mult: f64,
    /// X/Y mask of the generator on the instruction's targets.
    flip: usize,
    /// Y/Z mask of the generator.
    pmask: usize,
    /// `i^{#Y}` phase of the generator.
    global: C64,
    /// Control mask — the bracket only sums amplitudes whose control
    /// bits are all set (`Π_c G` rather than `G`).
    cmask: usize,
}

/// The rotation's Pauli generator mapped onto the instruction's target
/// qubits, or `None` for gates without a single shiftable generator.
fn generator(instr: &Instr) -> Option<PauliString> {
    let t = &instr.targets;
    match instr.gate {
        Gate::RX(_) => Some(PauliString::x(t[0])),
        Gate::RY(_) => Some(PauliString::y(t[0])),
        Gate::RZ(_) => Some(PauliString::z(t[0])),
        Gate::RZZ(_) => Some(PauliString::zz(t[0], t[1])),
        Gate::RXX(_) => Some(PauliString::new(vec![(t[0], Pauli::X), (t[1], Pauli::X)])),
        Gate::RYY(_) => Some(PauliString::new(vec![(t[0], Pauli::Y), (t[1], Pauli::Y)])),
        _ => None,
    }
}

/// Compile-once adjoint-mode gradient evaluator for ideal (pure-state)
/// simulation.
///
/// Construction scans the circuit for parameterized rotations and
/// compiles the forward pass; [`AdjointGradient::value_and_gradient`]
/// then returns `E(θ)` and the exact full gradient for the cost of one
/// compiled run plus one backward per-gate sweep — `O(m·2^n)` total,
/// instead of the shift rule's `O(k·m·2^n)`.
pub struct AdjointGradient {
    circuit: Circuit,
    compiled: CompiledCircuit,
    /// Daggered instructions in reverse order (`inverse[k]` undoes
    /// forward instruction `m−1−k`).
    inverse: Vec<Instr>,
    /// Parameterized occurrences sorted by instruction position.
    occurrences: Vec<Occurrence>,
    base: usize,
}

impl AdjointGradient {
    /// Scans `circuit` and compiles the forward pass.
    ///
    /// # Panics
    /// Panics if a free parameter appears in a gate without a Pauli
    /// generator (`P`/`U3` — express them through RZ/RY instead), the
    /// same contract as the parameter-shift evaluator.
    pub fn new(circuit: &Circuit) -> Self {
        let mut occurrences = Vec::new();
        for (at, instr) in circuit.instrs().iter().enumerate() {
            match (generator(instr), instr.gate.angles().first()) {
                (
                    Some(g),
                    Some(&Angle::Param {
                        idx,
                        mult,
                        offset: _,
                    }),
                ) => {
                    let (flip, pmask, global) = g.masks();
                    let cmask = instr.controls.iter().fold(0usize, |m, &c| m | (1 << c));
                    occurrences.push(Occurrence {
                        at,
                        idx,
                        mult,
                        flip,
                        pmask,
                        global,
                        cmask,
                    });
                }
                _ => {
                    assert!(
                        instr.gate.angles().iter().all(|a| a.param_idx().is_none()),
                        "free parameter inside non-shiftable gate {:?}",
                        instr.gate
                    );
                }
            }
        }
        let inverse: Vec<Instr> = circuit.inverse().instrs().to_vec();
        AdjointGradient {
            circuit: circuit.clone(),
            compiled: circuit.compile(),
            inverse,
            occurrences,
            base: circuit.n_params(),
        }
    }

    /// Number of source-circuit parameters the gradient covers.
    pub fn n_params(&self) -> usize {
        self.base
    }

    /// Number of parameterized gate occurrences (unlike the shift rule,
    /// the cost does not scale with this count).
    pub fn n_occurrences(&self) -> usize {
        self.occurrences.len()
    }

    /// `⟨H⟩` at `params` through the compiled forward pass.
    pub fn expectation(&self, params: &[f64], observable: &PauliSum) -> f64 {
        self.check_params(params);
        observable.expectation(&self.compiled.execute(params))
    }

    /// `(E(θ), ∂E/∂θ)` in one forward/backward sweep.
    pub fn value_and_gradient(&self, params: &[f64], observable: &PauliSum) -> (f64, Vec<f64>) {
        self.check_params(params);
        let mut psi = self.compiled.execute(params);
        let mut lam = observable.apply_to(&psi);
        // E = ⟨ψ|H|ψ⟩ = ⟨ψ|λ⟩ — real up to rounding for Hermitian H.
        let value = psi.inner(&lam).re;
        let mut grad = vec![0.0f64; self.base];
        if let Some(first) = self.occurrences.first().map(|o| o.at) {
            let m = self.circuit.instrs().len();
            let mut pending = self.occurrences.iter().rev().peekable();
            for j in (first..m).rev() {
                if let Some(o) = pending.next_if(|o| o.at == j) {
                    grad[o.idx] += o.mult * bracket(&lam, &psi, o);
                }
                if j == first {
                    // Nothing parameterized below — no need to keep
                    // unwinding the state.
                    break;
                }
                let undo = &self.inverse[m - 1 - j];
                psi.apply(undo, params);
                lam.apply(undo, params);
            }
        }
        (value, grad)
    }

    /// The exact gradient alone (same cost as
    /// [`AdjointGradient::value_and_gradient`]).
    pub fn gradient(&self, params: &[f64], observable: &PauliSum) -> Vec<f64> {
        self.value_and_gradient(params, observable).1
    }

    fn check_params(&self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.base,
            "expected {} parameters, got {}",
            self.base,
            params.len()
        );
    }
}

/// `Im ⟨λ| Π_c G |ψ⟩` — the occurrence's generator bracket, with the
/// control projector folded in as an index filter.
fn bracket(lam: &StateVector, psi: &StateVector, o: &Occurrence) -> f64 {
    let la = lam.amplitudes();
    let pa = psi.amplitudes();
    let mut acc = C64::ZERO;
    for (i, l) in la.iter().enumerate() {
        if i & o.cmask != o.cmask {
            continue;
        }
        let j = i ^ o.flip;
        let sign = 1.0 - 2.0 * ((j & o.pmask).count_ones() & 1) as f64;
        acc += (l.conj() * pa[j]).scale(sign);
    }
    (acc * o.global).im
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    fn fd_gradient(c: &Circuit, params: &[f64], h: &PauliSum, eps: f64) -> Vec<f64> {
        let sim = Simulator::new();
        let mut p = params.to_vec();
        (0..params.len())
            .map(|j| {
                let orig = p[j];
                p[j] = orig + eps;
                let e_plus = sim.expectation(c, &p, h);
                p[j] = orig - eps;
                let e_minus = sim.expectation(c, &p, h);
                p[j] = orig;
                (e_plus - e_minus) / (2.0 * eps)
            })
            .collect()
    }

    #[test]
    fn matches_analytic_single_rotation() {
        // E(θ) = <Z> after RY(θ) = cos(θ); dE/dθ = -sin(θ).
        let mut c = Circuit::new(1);
        let p = c.new_param();
        c.ry(0, p);
        let h = PauliSum::from_terms(vec![(1.0, PauliString::z(0))]);
        let ag = AdjointGradient::new(&c);
        for theta in [-2.0, -0.5, 0.0, 0.9, 2.7] {
            let (e, g) = ag.value_and_gradient(&[theta], &h);
            assert!((e - theta.cos()).abs() < 1e-12, "θ={theta}: E={e}");
            assert!((g[0] + theta.sin()).abs() < 1e-12, "θ={theta}: {}", g[0]);
        }
    }

    #[test]
    fn covers_every_rotation_family() {
        // One parameterized gate of each shiftable kind, interleaved with
        // constant gates, checked against central finite differences.
        let mut c = Circuit::new(3);
        let p: Vec<Angle> = (0..6).map(|_| c.new_param()).collect();
        c.h(0).h(1).h(2);
        c.rx(0, p[0]).ry(1, p[1]).rz(2, p[2]);
        c.rzz(0, 1, p[3]).rxx(1, 2, p[4]);
        c.push(Gate::RYY(p[5]), vec![], vec![0, 2]);
        c.cx(0, 1).t(2);
        let h = PauliSum::from_terms(vec![
            (1.0, PauliString::z(0)),
            (0.7, PauliString::zz(1, 2)),
            (-0.4, PauliString::x(1)),
            (0.3, PauliString::y(2)),
        ]);
        let params = [0.3, -0.8, 1.1, 0.5, -0.2, 0.9];
        let ag = AdjointGradient::new(&c);
        assert_eq!(ag.n_occurrences(), 6);
        let (e, g) = ag.value_and_gradient(&params, &h);
        let direct = Simulator::new().expectation(&c, &params, &h);
        assert!((e - direct).abs() < 1e-12);
        let fd = fd_gradient(&c, &params, &h, 1e-5);
        for (i, (a, b)) in g.iter().zip(&fd).enumerate() {
            assert!((a - b).abs() < 1e-9, "param {i}: {a} vs {b}");
        }
    }

    #[test]
    fn shared_and_scaled_parameters_accumulate() {
        // θ drives RY twice plus an RZZ at angle 3θ + 0.2.
        let mut c = Circuit::new(2);
        let p = c.new_param();
        c.ry(0, p).ry(1, p);
        c.rzz(
            0,
            1,
            Angle::Param {
                idx: 0,
                mult: 3.0,
                offset: 0.2,
            },
        );
        let h = PauliSum::from_terms(vec![(1.0, PauliString::z(0)), (0.5, PauliString::x(1))]);
        let ag = AdjointGradient::new(&c);
        let fd = fd_gradient(&c, &[0.4], &h, 5e-6);
        let g = ag.gradient(&[0.4], &h);
        assert!((g[0] - fd[0]).abs() < 1e-9, "{} vs {}", g[0], fd[0]);
    }

    #[test]
    fn controlled_rotation_gradient_is_exact() {
        // The two-term shift rule does not apply to controlled rotations
        // (the projected generator has three eigenvalues); the adjoint
        // bracket handles them exactly via the control mask.
        let mut c = Circuit::new(2);
        let p = c.new_param();
        c.h(0).ry(1, 0.6);
        c.cry(0, 1, p);
        let h = PauliSum::from_terms(vec![(1.0, PauliString::zz(0, 1))]);
        let ag = AdjointGradient::new(&c);
        let fd = fd_gradient(&c, &[0.7], &h, 1e-5);
        let g = ag.gradient(&[0.7], &h);
        assert!((g[0] - fd[0]).abs() < 1e-9, "{} vs {}", g[0], fd[0]);
    }

    #[test]
    fn constant_circuit_has_empty_gradient_and_correct_value() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let h = PauliSum::from_terms(vec![(1.0, PauliString::zz(0, 1))]);
        let ag = AdjointGradient::new(&c);
        assert_eq!(ag.n_occurrences(), 0);
        let (e, g) = ag.value_and_gradient(&[], &h);
        assert!(g.is_empty());
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-shiftable")]
    fn free_param_in_phase_gate_panics() {
        let mut c = Circuit::new(1);
        let p = c.new_param();
        c.p(0, p);
        AdjointGradient::new(&c);
    }
}
