//! The [`Simulator`] facade: one entry point for exact, sampled, and noisy
//! execution, plus observable estimation.

use crate::circuit::Circuit;
use crate::compile::CompiledCircuit;
use crate::density::DensityMatrix;
use crate::noise::NoiseModel;
use crate::pauli::{Pauli, PauliSum};
use crate::statevector::StateVector;
use qmldb_math::Rng64;
use std::collections::HashMap;

/// Execution facade over the state-vector and density-matrix engines.
#[derive(Clone, Debug, Default)]
pub struct Simulator {
    noise: NoiseModel,
}

impl Simulator {
    /// A noiseless simulator.
    pub fn new() -> Self {
        Simulator {
            noise: NoiseModel::ideal(),
        }
    }

    /// A simulator with the given noise model. Noisy paths use the
    /// density-matrix engine.
    pub fn with_noise(noise: NoiseModel) -> Self {
        Simulator { noise }
    }

    /// The configured noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Runs the circuit exactly, returning the final pure state.
    ///
    /// # Panics
    /// Panics if the simulator has a non-ideal noise model (noisy states
    /// are mixed; use [`Simulator::run_density`]).
    pub fn run(&self, circuit: &Circuit, params: &[f64]) -> StateVector {
        assert!(
            self.noise.is_ideal(),
            "noisy simulation produces mixed states; use run_density"
        );
        let mut s = StateVector::zero(circuit.n_qubits());
        s.run(circuit, params);
        s
    }

    /// Runs a pre-compiled circuit exactly, returning the final pure
    /// state. This is the compile-once/run-many entry point for training
    /// loops and parameter sweeps that execute one circuit thousands of
    /// times; semantics match [`Simulator::run`].
    ///
    /// # Panics
    /// Panics if the simulator has a non-ideal noise model.
    pub fn run_compiled(&self, compiled: &CompiledCircuit, params: &[f64]) -> StateVector {
        assert!(
            self.noise.is_ideal(),
            "noisy simulation produces mixed states; use run_density"
        );
        compiled.execute(params)
    }

    /// Exact expectation ⟨ψ|H|ψ⟩ of a pre-compiled circuit.
    ///
    /// # Panics
    /// Panics if the simulator has a non-ideal noise model (compiled
    /// execution is pure-state only; noisy callers keep the [`Circuit`]
    /// and use [`Simulator::expectation`]).
    pub fn expectation_compiled(
        &self,
        compiled: &CompiledCircuit,
        params: &[f64],
        observable: &PauliSum,
    ) -> f64 {
        observable.expectation(&self.run_compiled(compiled, params))
    }

    /// Runs the circuit on the density-matrix engine, applying the noise
    /// model's channels after every instruction.
    pub fn run_density(&self, circuit: &Circuit, params: &[f64]) -> DensityMatrix {
        let mut rho = DensityMatrix::zero(circuit.n_qubits());
        for instr in circuit.instrs() {
            rho.apply(instr, params);
            let touched: Vec<usize> = instr.qubits().collect();
            let channels = if touched.len() == 1 {
                &self.noise.after_1q
            } else {
                &self.noise.after_multi
            };
            for ch in channels {
                let kraus = ch.kraus();
                for &q in &touched {
                    rho.apply_kraus(&kraus, &[q]);
                }
            }
        }
        rho
    }

    /// Exact expectation ⟨ψ|H|ψ⟩ (noiseless) or tr(Hρ) (noisy).
    pub fn expectation(&self, circuit: &Circuit, params: &[f64], observable: &PauliSum) -> f64 {
        if self.noise.is_ideal() {
            observable.expectation(&self.run(circuit, params))
        } else {
            self.run_density(circuit, params).expectation(observable)
        }
    }

    /// Samples `shots` measurement outcomes (all qubits, computational
    /// basis), applying classical readout error if configured. Noise
    /// channels are honored via the density-matrix path when present.
    pub fn sample_counts(
        &self,
        circuit: &Circuit,
        params: &[f64],
        shots: usize,
        rng: &mut Rng64,
    ) -> HashMap<usize, usize> {
        let probs = if self.noise.is_ideal() {
            self.run(circuit, params).probabilities()
        } else {
            self.run_density(circuit, params).probabilities()
        };
        let n = circuit.n_qubits();
        let mut counts = HashMap::new();
        // Cumulative sampling.
        let mut cdf = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in &probs {
            acc += p;
            cdf.push(acc);
        }
        for _ in 0..shots {
            let u = rng.uniform() * acc;
            // First index with cdf > u (an exact boundary hit must not
            // select the zero-probability outcome to its left).
            let mut idx = cdf.partition_point(|&p| p <= u).min(probs.len() - 1);
            if self.noise.readout_flip > 0.0 {
                for q in 0..n {
                    if rng.chance(self.noise.readout_flip) {
                        idx ^= 1 << q;
                    }
                }
            }
            *counts.entry(idx).or_insert(0) += 1;
        }
        counts
    }

    /// Runs a batch of circuits exactly, one pooled worker per chunk (see
    /// [`qmldb_math::par`]), returning final states in input order. The
    /// workhorse of Gram-matrix feature-state preparation and sweep-style
    /// experiment drivers.
    ///
    /// Batched execution always takes the compiled path, regardless of
    /// circuit size: the interpreter-vs-compiled crossover in
    /// [`StateVector::run`] is a *one-shot* heuristic, and routing batch
    /// members through it made small circuits re-enter the interpreter on
    /// every element (and drift bitwise from compiled single runs of the
    /// same circuit).
    ///
    /// # Panics
    /// Panics if the simulator has a non-ideal noise model, like
    /// [`Simulator::run`].
    pub fn run_batch(&self, circuits: &[Circuit], params: &[f64]) -> Vec<StateVector> {
        assert!(
            self.noise.is_ideal(),
            "noisy simulation produces mixed states; use run_density"
        );
        qmldb_math::par::map(circuits, |_, c| c.compile().execute(params))
    }

    /// Runs one pre-compiled circuit against many parameter vectors,
    /// returning final states in input order — the batched form of
    /// [`Simulator::run_compiled`]. Compilation and parameter-shape
    /// resolution are paid once for the whole batch, which is the shape of
    /// every shot loop, parameter sweep, and gradient stencil in the
    /// workspace.
    ///
    /// # Panics
    /// Panics if the simulator has a non-ideal noise model, like
    /// [`Simulator::run`].
    pub fn run_batch_params(
        &self,
        compiled: &CompiledCircuit,
        param_sets: &[Vec<f64>],
    ) -> Vec<StateVector> {
        assert!(
            self.noise.is_ideal(),
            "noisy simulation produces mixed states; use run_density"
        );
        qmldb_math::par::map(param_sets, |_, params| compiled.execute(params))
    }

    /// Shot-based estimate of ⟨H⟩ by measuring each Pauli term in its own
    /// rotated basis (`shots` per term). This is how real hardware
    /// estimates observables; statistical error scales as 1/√shots.
    ///
    /// Terms are estimated in parallel, each on its own random stream
    /// forked from `rng`, so the result is bit-identical for any
    /// `QMLDB_THREADS` setting.
    pub fn expectation_sampled(
        &self,
        circuit: &Circuit,
        params: &[f64],
        observable: &PauliSum,
        shots: usize,
        rng: &mut Rng64,
    ) -> f64 {
        let contributions =
            qmldb_math::par::map_rng(observable.terms(), rng, |_, (coeff, string), term_rng| {
                if string.is_identity() {
                    return *coeff;
                }
                // Rotate each non-Z factor into the Z basis.
                let mut rotated = circuit.clone();
                for &(q, p) in string.ops() {
                    match p {
                        Pauli::X => {
                            rotated.h(q);
                        }
                        Pauli::Y => {
                            rotated.sdg(q).h(q);
                        }
                        Pauli::Z => {}
                    }
                }
                let mut zmask = 0usize;
                for &(q, _) in string.ops() {
                    zmask |= 1 << q;
                }
                let counts = self.sample_counts(&rotated, params, shots, term_rng);
                let mut sum = 0i64;
                for (outcome, count) in counts {
                    let parity = (outcome & zmask).count_ones() & 1;
                    let sign = if parity == 0 { 1 } else { -1 };
                    sum += sign * count as i64;
                }
                coeff * sum as f64 / shots as f64
            });
        // Summed in term order: floating-point addition is not associative,
        // and a thread-dependent order would break reproducibility.
        contributions.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::Channel;
    use crate::pauli::PauliString;

    #[test]
    fn exact_run_produces_bell_statistics() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sim = Simulator::new();
        let s = sim.run(&c, &[]);
        assert!((s.probabilities()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn expectation_exact_matches_pauli_module() {
        let mut c = Circuit::new(2);
        c.ry(0, 0.8).cx(0, 1);
        let h = PauliSum::from_terms(vec![(1.0, PauliString::zz(0, 1))]);
        let sim = Simulator::new();
        let s = sim.run(&c, &[]);
        assert!((sim.expectation(&c, &[], &h) - h.expectation(&s)).abs() < 1e-12);
    }

    #[test]
    fn sampled_expectation_converges_to_exact() {
        let mut c = Circuit::new(2);
        c.ry(0, 1.1).cx(0, 1).rx(1, 0.4);
        let h = PauliSum::from_terms(vec![
            (0.5, PauliString::z(0)),
            (0.3, PauliString::x(1)),
            (0.2, PauliString::zz(0, 1)),
            (1.0, PauliString::identity()),
        ]);
        let sim = Simulator::new();
        let exact = sim.expectation(&c, &[], &h);
        let mut rng = Rng64::new(31);
        let sampled = sim.expectation_sampled(&c, &[], &h, 40_000, &mut rng);
        assert!(
            (exact - sampled).abs() < 0.02,
            "exact {exact} vs sampled {sampled}"
        );
    }

    #[test]
    fn noisy_run_reduces_fidelity() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let ideal = Simulator::new().run(&c, &[]);
        let noisy = Simulator::with_noise(NoiseModel::depolarizing(0.02, 0.05));
        let rho = noisy.run_density(&c, &[]);
        let f = rho.fidelity_pure(&ideal);
        assert!(f < 1.0 - 1e-4, "noise must lower fidelity, got {f}");
        assert!(f > 0.7, "moderate noise should not destroy the state");
        assert!((rho.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn readout_error_biases_counts() {
        let c = Circuit::new(1); // stays |0>
        let mut noise = NoiseModel::ideal();
        noise.readout_flip = 0.1;
        let sim = Simulator::with_noise(noise);
        let mut rng = Rng64::new(3);
        let counts = sim.sample_counts(&c, &[], 50_000, &mut rng);
        let ones = *counts.get(&1).unwrap_or(&0) as f64 / 50_000.0;
        assert!((ones - 0.1).abs() < 0.01, "flip rate {ones}");
    }

    #[test]
    fn noisy_expectation_damps_signal() {
        let mut c = Circuit::new(1);
        c.x(0);
        let h = PauliSum::from_terms(vec![(1.0, PauliString::z(0))]);
        let exact = Simulator::new().expectation(&c, &[], &h);
        assert!((exact + 1.0).abs() < 1e-12);
        let mut noise = NoiseModel::ideal();
        noise.after_1q = vec![Channel::Depolarizing(0.3)];
        let noisy = Simulator::with_noise(noise).expectation(&c, &[], &h);
        assert!(noisy > exact && noisy < 0.0, "damped toward 0, got {noisy}");
    }

    #[test]
    fn run_batch_matches_individual_compiled_runs() {
        let sim = Simulator::new();
        let circuits: Vec<Circuit> = (0..9)
            .map(|i| {
                let mut c = Circuit::new(3);
                c.ry(i % 3, 0.3 * i as f64).cx(0, 1).rzz(1, 2, 0.5);
                c
            })
            .collect();
        let batch = sim.run_batch(&circuits, &[]);
        assert_eq!(batch.len(), circuits.len());
        for (c, s) in circuits.iter().zip(&batch) {
            assert_eq!(*s, sim.run_compiled(&c.compile(), &[]));
        }
    }

    #[test]
    fn run_batch_takes_the_compiled_path_below_the_one_shot_crossover() {
        // Regression: `run_batch` used to route members through the
        // one-shot `StateVector::run` crossover, so circuits under
        // COMPILE_MIN_QUBITS interpreted on every batch element. The
        // compiled path fuses H·H to identity and returns |00⟩ *exactly*;
        // the interpreter applies H twice and lands on
        // 2·(1/√2)² = 0.9999999999999998. Bit-exactness of the amplitude
        // is therefore a path witness, not a tolerance choice.
        let mut c = Circuit::new(2);
        c.h(0).h(0);
        assert!(c.n_qubits() < StateVector::COMPILE_MIN_QUBITS);
        let sim = Simulator::new();
        let batch = sim.run_batch(std::slice::from_ref(&c), &[]);
        assert_eq!(batch[0].amplitudes()[0], qmldb_math::C64::ONE);
        assert_eq!(batch[0], sim.run_compiled(&c.compile(), &[]));
    }

    #[test]
    fn run_batch_params_matches_per_params_compiled_runs() {
        let mut c = Circuit::new(3);
        let p = c.new_param();
        c.h(0).ry(1, p).rzz(0, 2, p).cx(1, 2);
        let cc = c.compile();
        let sim = Simulator::new();
        let param_sets: Vec<Vec<f64>> = (0..7).map(|k| vec![0.4 * k as f64 - 1.2]).collect();
        let batch = sim.run_batch_params(&cc, &param_sets);
        assert_eq!(batch.len(), param_sets.len());
        for (ps, s) in param_sets.iter().zip(&batch) {
            assert_eq!(*s, sim.run_compiled(&cc, ps));
        }
    }

    #[test]
    fn compiled_entry_points_match_circuit_paths() {
        // At least COMPILE_MIN_QUBITS qubits, so `Simulator::run` takes
        // the compiled path too and bit-equality is the right assertion.
        let mut c = Circuit::new(StateVector::COMPILE_MIN_QUBITS);
        let p = c.new_param();
        c.h(0)
            .ry(1, p)
            .cx(0, 1)
            .rzz(1, 2, p)
            .rx(2, 0.3)
            .cx(3, 4)
            .rzz(4, 5, p);
        let sim = Simulator::new();
        let cc = c.compile();
        let h = PauliSum::from_terms(vec![(0.7, PauliString::zz(0, 2)), (0.2, PauliString::z(1))]);
        for k in 0..4 {
            let params = [0.5 * k as f64 - 1.0];
            assert_eq!(sim.run_compiled(&cc, &params), sim.run(&c, &params));
            assert_eq!(
                sim.expectation_compiled(&cc, &params, &h),
                sim.expectation(&c, &params, &h)
            );
        }
    }

    #[test]
    #[should_panic(expected = "mixed states")]
    fn compiled_run_with_noise_panics() {
        let sim = Simulator::with_noise(NoiseModel::depolarizing(0.01, 0.01));
        sim.run_compiled(&Circuit::new(1).compile(), &[]);
    }

    #[test]
    #[should_panic(expected = "mixed states")]
    fn pure_run_with_noise_panics() {
        let sim = Simulator::with_noise(NoiseModel::depolarizing(0.01, 0.01));
        sim.run(&Circuit::new(1), &[]);
    }
}
