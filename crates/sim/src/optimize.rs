//! Peephole circuit optimizer.
//!
//! Three passes run to a fixed point:
//! 1. drop identity gates and zero-angle constant rotations,
//! 2. cancel adjacent inverse pairs acting on the same wires,
//! 3. merge adjacent constant rotations of the same axis on the same wires.
//!
//! Two instructions are "adjacent" on a qubit timeline if no instruction
//! touching any shared qubit sits between them.

use crate::circuit::{Circuit, Instr};
use crate::gate::{Angle, Gate};

/// Statistics from one [`optimize`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Gates removed by identity/zero-rotation elimination.
    pub removed_trivial: usize,
    /// Gate pairs removed by inverse cancellation.
    pub cancelled_pairs: usize,
    /// Rotation pairs merged into one gate.
    pub merged_rotations: usize,
}

/// Optimizes `circuit` in place and returns statistics.
pub fn optimize(circuit: &mut Circuit) -> OptStats {
    let mut stats = OptStats::default();
    loop {
        let before = stats;
        stats.removed_trivial += remove_trivial(circuit);
        stats.cancelled_pairs += cancel_inverses(circuit);
        stats.merged_rotations += merge_rotations(circuit);
        if stats == before {
            break;
        }
    }
    stats
}

/// Fuses runs of adjacent constant single-qubit gates on the same wire
/// into one dense [`Gate::Unitary`]. Parameterized gates act as barriers.
/// Returns the number of gates eliminated.
///
/// This is a separate pass from [`optimize`] because it trades gate count
/// for opaque matrices — good for simulation throughput, bad for
/// readability and parameter-shift differentiation.
pub fn fuse_single_qubit(circuit: &mut Circuit) -> usize {
    let instrs = circuit.instrs().to_vec();
    let before = instrs.len();
    let mut out: Vec<Instr> = Vec::with_capacity(before);
    // For each qubit, the index in `out` of a fusable trailing 1q gate.
    let mut tail: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
    for instr in instrs {
        let fusable = instr.controls.is_empty()
            && instr.targets.len() == 1
            && instr.gate.angles().iter().all(|a| a.param_idx().is_none());
        if fusable {
            let q = instr.targets[0];
            if let Some(prev_idx) = tail[q] {
                // Compose: new = G · prev (prev applied first).
                let prev_mat = out[prev_idx].gate.matrix(&[]);
                let mat = instr.gate.matrix(&[]).matmul(&prev_mat);
                out[prev_idx].gate = Gate::Unitary(mat);
                continue;
            }
            tail[q] = Some(out.len());
            out.push(instr);
        } else {
            // Any multi-qubit or parameterized gate breaks fusion on the
            // wires it touches.
            for q in instr.qubits() {
                tail[q] = None;
            }
            out.push(instr);
        }
    }
    let after = out.len();
    circuit.set_instrs(out);
    before - after
}

fn is_trivial(gate: &Gate) -> bool {
    match gate {
        Gate::I => true,
        Gate::RX(Angle::Const(a))
        | Gate::RY(Angle::Const(a))
        | Gate::RZ(Angle::Const(a))
        | Gate::P(Angle::Const(a))
        | Gate::RZZ(Angle::Const(a))
        | Gate::RXX(Angle::Const(a))
        | Gate::RYY(Angle::Const(a)) => a.abs() < 1e-15,
        _ => false,
    }
}

fn remove_trivial(circuit: &mut Circuit) -> usize {
    let before = circuit.len();
    let kept: Vec<Instr> = circuit
        .instrs()
        .iter()
        .filter(|i| !is_trivial(&i.gate))
        .cloned()
        .collect();
    circuit.set_instrs(kept);
    before - circuit.len()
}

/// Finds, for each instruction, the previous instruction adjacent on its
/// wires, and removes pairs that cancel.
fn cancel_inverses(circuit: &mut Circuit) -> usize {
    let instrs = circuit.instrs().to_vec();
    let mut removed = vec![false; instrs.len()];
    let mut cancelled = 0usize;
    // last_on[q] = index of the most recent surviving instruction touching q
    let mut last_on: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
    for (idx, instr) in instrs.iter().enumerate() {
        // The candidate predecessor must be the last instruction on *all*
        // of this instruction's qubits.
        let mut prev: Option<usize> = None;
        let mut blocked = false;
        for q in instr.qubits() {
            match (prev, last_on[q]) {
                (_, None) => {
                    blocked = true;
                }
                (None, Some(p)) => prev = Some(p),
                (Some(a), Some(b)) if a == b => {}
                _ => {
                    blocked = true;
                }
            }
        }
        let mut did_cancel = false;
        if !blocked {
            if let Some(p) = prev {
                let cand = &instrs[p];
                // Same wires (same controls/targets) and mutually inverse.
                let same_wires = cand.controls == instr.controls && cand.targets == instr.targets;
                // Also allow symmetric-wire gates (Swap/RZZ-family) with
                // reversed target order.
                let sym = matches!(
                    instr.gate,
                    Gate::Swap | Gate::RZZ(_) | Gate::RXX(_) | Gate::RYY(_)
                ) && cand.controls == instr.controls
                    && cand.targets.len() == 2
                    && instr.targets.len() == 2
                    && cand.targets[0] == instr.targets[1]
                    && cand.targets[1] == instr.targets[0];
                if (same_wires || sym) && cand.gate.cancels_with(&instr.gate) {
                    removed[p] = true;
                    removed[idx] = true;
                    cancelled += 1;
                    did_cancel = true;
                    // Roll the frontier back for the wires of p: they now
                    // point at whatever preceded p. Recomputing exactly is
                    // O(n); for simplicity clear them (conservative: may
                    // miss chained cancellations this pass, the fixed-point
                    // loop catches them next pass).
                    for q in instr.qubits() {
                        last_on[q] = None;
                    }
                }
            }
        }
        if !did_cancel {
            for q in instr.qubits() {
                last_on[q] = Some(idx);
            }
        }
    }
    let kept: Vec<Instr> = instrs
        .into_iter()
        .zip(&removed)
        .filter(|(_, &r)| !r)
        .map(|(i, _)| i)
        .collect();
    circuit.set_instrs(kept);
    cancelled
}

fn merge_axis(a: &Gate, b: &Gate) -> Option<Gate> {
    match (a, b) {
        (Gate::RX(Angle::Const(x)), Gate::RX(Angle::Const(y))) => {
            Some(Gate::RX(Angle::Const(x + y)))
        }
        (Gate::RY(Angle::Const(x)), Gate::RY(Angle::Const(y))) => {
            Some(Gate::RY(Angle::Const(x + y)))
        }
        (Gate::RZ(Angle::Const(x)), Gate::RZ(Angle::Const(y))) => {
            Some(Gate::RZ(Angle::Const(x + y)))
        }
        (Gate::P(Angle::Const(x)), Gate::P(Angle::Const(y))) => Some(Gate::P(Angle::Const(x + y))),
        (Gate::RZZ(Angle::Const(x)), Gate::RZZ(Angle::Const(y))) => {
            Some(Gate::RZZ(Angle::Const(x + y)))
        }
        _ => None,
    }
}

fn merge_rotations(circuit: &mut Circuit) -> usize {
    let mut instrs = circuit.instrs().to_vec();
    let mut merged = 0usize;
    let mut last_on: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
    let mut removed = vec![false; instrs.len()];
    for idx in 0..instrs.len() {
        let qubits: Vec<usize> = instrs[idx].qubits().collect();
        let mut prev: Option<usize> = None;
        let mut blocked = false;
        for &q in &qubits {
            match (prev, last_on[q]) {
                (_, None) => blocked = true,
                (None, Some(p)) => prev = Some(p),
                (Some(a), Some(b)) if a == b => {}
                _ => blocked = true,
            }
        }
        let mut did_merge = false;
        if !blocked {
            if let Some(p) = prev {
                if instrs[p].controls == instrs[idx].controls
                    && instrs[p].targets == instrs[idx].targets
                {
                    if let Some(g) = merge_axis(&instrs[p].gate, &instrs[idx].gate) {
                        instrs[idx].gate = g;
                        removed[p] = true;
                        merged += 1;
                        did_merge = true;
                        for &q in &qubits {
                            last_on[q] = Some(idx);
                        }
                    }
                }
            }
        }
        if !did_merge {
            for &q in &qubits {
                last_on[q] = Some(idx);
            }
        }
    }
    let kept: Vec<Instr> = instrs
        .into_iter()
        .zip(&removed)
        .filter(|(_, &r)| !r)
        .map(|(i, _)| i)
        .collect();
    circuit.set_instrs(kept);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;

    fn equivalent(a: &Circuit, b: &Circuit) -> bool {
        // Compare action on a handful of basis states.
        for idx in 0..(1usize << a.n_qubits()) {
            let mut sa = StateVector::basis(a.n_qubits(), idx);
            let mut sb = StateVector::basis(b.n_qubits(), idx);
            sa.run(a, &[0.3, 0.7, -0.4, 1.1]);
            sb.run(b, &[0.3, 0.7, -0.4, 1.1]);
            if sa.fidelity(&sb) < 1.0 - 1e-9 {
                return false;
            }
        }
        true
    }

    #[test]
    fn double_hadamard_cancels() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        let stats = optimize(&mut c);
        assert_eq!(c.len(), 0);
        assert_eq!(stats.cancelled_pairs, 1);
    }

    #[test]
    fn double_cx_cancels() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        optimize(&mut c);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        let orig = c.clone();
        optimize(&mut c);
        assert_eq!(c.len(), 3, "CX touches qubit 0, blocking H·H");
        assert!(equivalent(&orig, &c));
    }

    #[test]
    fn gate_on_other_qubit_does_not_block() {
        let mut c = Circuit::new(2);
        c.h(0).x(1).h(0);
        optimize(&mut c);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_rotations_removed() {
        let mut c = Circuit::new(1);
        c.rx(0, 0.0).ry(0, 0.0).rz(0, 1.0);
        let stats = optimize(&mut c);
        assert_eq!(c.len(), 1);
        assert_eq!(stats.removed_trivial, 2);
    }

    #[test]
    fn rotations_merge_and_may_vanish() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.4).rz(0, 0.6).rz(0, -1.0);
        optimize(&mut c);
        assert_eq!(c.len(), 0, "0.4+0.6-1.0 = 0 should fully cancel");
    }

    #[test]
    fn parameterized_rotations_are_preserved() {
        let mut c = Circuit::new(1);
        let p = c.new_param();
        c.rx(0, p).rx(0, p);
        optimize(&mut c);
        assert_eq!(c.len(), 2, "free parameters must not be merged");
    }

    #[test]
    fn chained_cancellation_reaches_fixed_point() {
        let mut c = Circuit::new(1);
        c.h(0).x(0).x(0).h(0);
        optimize(&mut c);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn swap_with_reversed_targets_cancels() {
        let mut c = Circuit::new(2);
        c.swap(0, 1).swap(1, 0);
        optimize(&mut c);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn fusion_collapses_single_qubit_runs() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).rx(0, 0.4).x(1).h(1);
        let removed = fuse_single_qubit(&mut c);
        assert_eq!(removed, 3, "5 gates fuse into 2 dense unitaries");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn fusion_preserves_semantics() {
        let mut c = Circuit::new(3);
        c.h(0)
            .t(0)
            .cx(0, 1)
            .rx(1, 0.9)
            .rz(1, -0.3)
            .h(2)
            .s(2)
            .cx(1, 2)
            .h(1);
        let orig = c.clone();
        fuse_single_qubit(&mut c);
        assert!(c.len() < orig.len());
        assert!(equivalent(&orig, &c));
    }

    #[test]
    fn fusion_respects_parameterized_barriers() {
        let mut c = Circuit::new(1);
        let p = c.new_param();
        c.h(0).ry(0, p).h(0);
        fuse_single_qubit(&mut c);
        assert_eq!(c.len(), 3, "free parameter must survive fusion");
    }

    #[test]
    fn fusion_respects_entangling_barriers() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        fuse_single_qubit(&mut c);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn optimization_preserves_semantics_on_mixed_circuit() {
        let mut c = Circuit::new(3);
        let q0 = c.new_param();
        c.h(0)
            .h(0)
            .rx(1, 0.5)
            .rx(1, -0.2)
            .cx(0, 1)
            .rz(2, q0)
            .t(2)
            .cx(0, 1)
            .ry(1, 0.0);
        let orig = c.clone();
        optimize(&mut c);
        assert!(c.len() < orig.len());
        assert!(equivalent(&orig, &c));
    }
}
