//! Circuit intermediate representation.
//!
//! A [`Circuit`] is an ordered list of [`Instr`]s over `n` qubits plus a
//! count of free parameters. Builder methods cover the common gate set; the
//! generic [`Circuit::push`] handles anything else (multi-controlled gates,
//! arbitrary unitaries).

use crate::gate::{Angle, Gate};

/// One gate application: a gate on `targets`, conditioned on every qubit in
/// `controls` being |1⟩.
#[derive(Clone, Debug, PartialEq)]
pub struct Instr {
    /// The gate applied to the targets.
    pub gate: Gate,
    /// Control qubits (may be empty).
    pub controls: Vec<usize>,
    /// Target qubits; length must equal `gate.arity()`.
    pub targets: Vec<usize>,
}

impl Instr {
    /// All qubits the instruction touches.
    pub fn qubits(&self) -> impl Iterator<Item = usize> + '_ {
        self.controls.iter().chain(self.targets.iter()).copied()
    }
}

/// A quantum circuit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    n_params: usize,
    instrs: Vec<Instr>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            n_params: 0,
            instrs: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of free parameters (`θ` entries referenced by gates).
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// The instruction list.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Allocates a fresh parameter and returns an [`Angle`] referencing it.
    pub fn new_param(&mut self) -> Angle {
        let a = Angle::param(self.n_params);
        self.n_params += 1;
        a
    }

    /// Allocates `k` fresh parameters.
    pub fn new_params(&mut self, k: usize) -> Vec<Angle> {
        (0..k).map(|_| self.new_param()).collect()
    }

    /// Appends an instruction after validating qubit indices.
    ///
    /// # Panics
    /// Panics on out-of-range qubits, duplicated qubits within the
    /// instruction, or a target count not matching the gate arity.
    pub fn push(&mut self, gate: Gate, controls: Vec<usize>, targets: Vec<usize>) -> &mut Self {
        assert_eq!(
            targets.len(),
            gate.arity(),
            "gate {gate:?} expects {} targets, got {}",
            gate.arity(),
            targets.len()
        );
        let mut seen = vec![false; self.n_qubits];
        for q in controls.iter().chain(targets.iter()) {
            assert!(
                *q < self.n_qubits,
                "qubit {q} out of range (n = {})",
                self.n_qubits
            );
            assert!(!seen[*q], "qubit {q} repeated within one instruction");
            seen[*q] = true;
        }
        // Track parameters referenced by constant-folded angles.
        for a in gate.angles() {
            if let Some(idx) = a.param_idx() {
                assert!(
                    idx < self.n_params,
                    "angle references parameter {idx} but circuit has {}",
                    self.n_params
                );
            }
        }
        self.instrs.push(Instr {
            gate,
            controls,
            targets,
        });
        self
    }

    // ------ single-qubit builders ------

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H, vec![], vec![q])
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X, vec![], vec![q])
    }

    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y, vec![], vec![q])
    }

    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z, vec![], vec![q])
    }

    /// S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S, vec![], vec![q])
    }

    /// S† on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sdg, vec![], vec![q])
    }

    /// T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::T, vec![], vec![q])
    }

    /// X rotation on `q`.
    pub fn rx(&mut self, q: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::RX(angle.into()), vec![], vec![q])
    }

    /// Y rotation on `q`.
    pub fn ry(&mut self, q: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::RY(angle.into()), vec![], vec![q])
    }

    /// Z rotation on `q`.
    pub fn rz(&mut self, q: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::RZ(angle.into()), vec![], vec![q])
    }

    /// Phase gate on `q`.
    pub fn p(&mut self, q: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::P(angle.into()), vec![], vec![q])
    }

    /// U3 rotation on `q`.
    pub fn u3(
        &mut self,
        q: usize,
        theta: impl Into<Angle>,
        phi: impl Into<Angle>,
        lam: impl Into<Angle>,
    ) -> &mut Self {
        self.push(
            Gate::U3(theta.into(), phi.into(), lam.into()),
            vec![],
            vec![q],
        )
    }

    // ------ two-qubit builders ------

    /// CNOT with control `c`, target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::X, vec![c], vec![t])
    }

    /// Controlled-Y.
    pub fn cy(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::Y, vec![c], vec![t])
    }

    /// Controlled-Z.
    pub fn cz(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::Z, vec![c], vec![t])
    }

    /// Controlled phase.
    pub fn cp(&mut self, c: usize, t: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::P(angle.into()), vec![c], vec![t])
    }

    /// Controlled RX.
    pub fn crx(&mut self, c: usize, t: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::RX(angle.into()), vec![c], vec![t])
    }

    /// Controlled RY.
    pub fn cry(&mut self, c: usize, t: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::RY(angle.into()), vec![c], vec![t])
    }

    /// Controlled RZ.
    pub fn crz(&mut self, c: usize, t: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::RZ(angle.into()), vec![c], vec![t])
    }

    /// SWAP of two qubits.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap, vec![], vec![a, b])
    }

    /// ZZ interaction.
    pub fn rzz(&mut self, a: usize, b: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::RZZ(angle.into()), vec![], vec![a, b])
    }

    /// XX interaction.
    pub fn rxx(&mut self, a: usize, b: usize, angle: impl Into<Angle>) -> &mut Self {
        self.push(Gate::RXX(angle.into()), vec![], vec![a, b])
    }

    // ------ multi-controlled builders ------

    /// Toffoli (CCX).
    pub fn ccx(&mut self, c1: usize, c2: usize, t: usize) -> &mut Self {
        self.push(Gate::X, vec![c1, c2], vec![t])
    }

    /// Fredkin (controlled SWAP).
    pub fn cswap(&mut self, c: usize, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap, vec![c], vec![a, b])
    }

    /// Multi-controlled X.
    pub fn mcx(&mut self, controls: &[usize], t: usize) -> &mut Self {
        self.push(Gate::X, controls.to_vec(), vec![t])
    }

    /// Multi-controlled Z.
    pub fn mcz(&mut self, controls: &[usize], t: usize) -> &mut Self {
        self.push(Gate::Z, controls.to_vec(), vec![t])
    }

    // ------ composition ------

    /// Appends all instructions of `other` (same qubit count required).
    /// Parameters of `other` are re-based after this circuit's parameters.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(
            self.n_qubits, other.n_qubits,
            "cannot extend: qubit counts differ"
        );
        let base = self.n_params;
        for instr in &other.instrs {
            let gate = rebase_gate(&instr.gate, base);
            self.instrs.push(Instr {
                gate,
                controls: instr.controls.clone(),
                targets: instr.targets.clone(),
            });
        }
        self.n_params += other.n_params;
        self
    }

    /// The inverse circuit: instructions reversed with each gate daggered.
    /// Shares this circuit's parameter space.
    pub fn inverse(&self) -> Circuit {
        let instrs = self
            .instrs
            .iter()
            .rev()
            .map(|i| Instr {
                gate: i.gate.dagger(),
                controls: i.controls.clone(),
                targets: i.targets.clone(),
            })
            .collect();
        Circuit {
            n_qubits: self.n_qubits,
            n_params: self.n_params,
            instrs,
        }
    }

    /// Returns a copy with instruction `at` replaced by `gate` (same wires).
    /// Used by the parameter-shift rule to shift a single gate occurrence.
    pub fn with_gate_replaced(&self, at: usize, gate: Gate) -> Circuit {
        let mut c = self.clone();
        c.instrs[at].gate = gate;
        c
    }

    /// Counts instructions touching each qubit; useful for depth heuristics.
    pub fn gate_counts_per_qubit(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_qubits];
        for instr in &self.instrs {
            for q in instr.qubits() {
                counts[q] += 1;
            }
        }
        counts
    }

    /// Circuit depth: longest chain of instructions per qubit timeline.
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.n_qubits];
        for instr in &self.instrs {
            let level = instr.qubits().map(|q| frontier[q]).max().unwrap_or(0) + 1;
            for q in instr.qubits() {
                frontier[q] = level;
            }
        }
        frontier.into_iter().max().unwrap_or(0)
    }

    /// Replaces the instruction list (used by the optimizer).
    pub(crate) fn set_instrs(&mut self, instrs: Vec<Instr>) {
        self.instrs = instrs;
    }
}

/// Shifts every parameter reference in a gate by `base`.
fn rebase_gate(gate: &Gate, base: usize) -> Gate {
    let shift = |a: Angle| match a {
        Angle::Const(v) => Angle::Const(v),
        Angle::Param { idx, mult, offset } => Angle::Param {
            idx: idx + base,
            mult,
            offset,
        },
    };
    match gate {
        Gate::RX(t) => Gate::RX(shift(*t)),
        Gate::RY(t) => Gate::RY(shift(*t)),
        Gate::RZ(t) => Gate::RZ(shift(*t)),
        Gate::P(t) => Gate::P(shift(*t)),
        Gate::RZZ(t) => Gate::RZZ(shift(*t)),
        Gate::RXX(t) => Gate::RXX(shift(*t)),
        Gate::RYY(t) => Gate::RYY(shift(*t)),
        Gate::U3(a, b, c) => Gate::U3(shift(*a), shift(*b), shift(*c)),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_instructions() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2);
        assert_eq!(c.len(), 3);
        assert_eq!(c.instrs()[1].controls, vec![0]);
        assert_eq!(c.instrs()[2].controls, vec![0, 1]);
    }

    #[test]
    fn params_are_allocated_sequentially() {
        let mut c = Circuit::new(1);
        let a = c.new_param();
        let b = c.new_param();
        assert_eq!(a.param_idx(), Some(0));
        assert_eq!(b.param_idx(), Some(1));
        assert_eq!(c.n_params(), 2);
        c.rx(0, a).ry(0, b);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        Circuit::new(2).h(2);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn duplicate_qubit_panics() {
        Circuit::new(2).push(Gate::X, vec![0], vec![0]);
    }

    #[test]
    #[should_panic(expected = "references parameter")]
    fn unallocated_param_panics() {
        Circuit::new(1).rx(0, Angle::param(0));
    }

    #[test]
    fn extend_rebases_parameters() {
        let mut a = Circuit::new(2);
        let pa = a.new_param();
        a.rx(0, pa);

        let mut b = Circuit::new(2);
        let pb = b.new_param();
        b.ry(1, pb);

        a.extend(&b);
        assert_eq!(a.n_params(), 2);
        match &a.instrs()[1].gate {
            Gate::RY(Angle::Param { idx, .. }) => assert_eq!(*idx, 1),
            g => panic!("unexpected gate {g:?}"),
        }
    }

    #[test]
    fn inverse_reverses_and_daggers() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.len(), 3);
        assert_eq!(inv.instrs()[0].gate, Gate::X); // cx stays X-with-control
        assert_eq!(inv.instrs()[1].gate, Gate::Sdg);
        assert_eq!(inv.instrs()[2].gate, Gate::H);
    }

    #[test]
    fn depth_accounts_for_parallelism() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // depth 1 (all parallel)
        assert_eq!(c.depth(), 1);
        c.cx(0, 1); // depth 2
        c.cx(1, 2); // depth 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn with_gate_replaced_swaps_one_instruction() {
        let mut c = Circuit::new(1);
        let p = c.new_param();
        c.rx(0, p);
        let shifted = c.with_gate_replaced(0, Gate::RX(p.shifted(0.5)));
        assert_ne!(c, shifted);
        assert_eq!(shifted.len(), 1);
    }

    #[test]
    fn gate_counts_per_qubit_totals() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).z(1);
        assert_eq!(c.gate_counts_per_qubit(), vec![2, 2]);
    }
}
