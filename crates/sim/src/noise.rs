//! Noise channels and circuit-level noise models.
//!
//! Channels are specified by their Kraus operators and applied by the
//! density-matrix engine. A [`NoiseModel`] attaches channels after each
//! gate (per touched qubit) plus classical readout error, which is the
//! standard coarse model of NISQ hardware.

use qmldb_math::{CMatrix, C64};

/// A single-qubit noise channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Channel {
    /// Depolarizing channel: with probability `p` replace the qubit state
    /// by a uniformly random Pauli error (p/3 each of X, Y, Z).
    Depolarizing(f64),
    /// Bit flip (X) with probability `p`.
    BitFlip(f64),
    /// Phase flip (Z) with probability `p`.
    PhaseFlip(f64),
    /// Amplitude damping with decay probability `γ`.
    AmplitudeDamping(f64),
    /// Phase damping with parameter `λ`.
    PhaseDamping(f64),
}

impl Channel {
    /// The channel's Kraus operators. They satisfy `Σ K†K = I`, which is
    /// asserted by tests.
    pub fn kraus(&self) -> Vec<CMatrix> {
        let z = C64::ZERO;
        let o = C64::ONE;
        let m = |rows: &[Vec<C64>]| CMatrix::from_rows(rows);
        match *self {
            Channel::Depolarizing(p) => {
                assert!((0.0..=1.0).contains(&p), "p out of range");
                let k0 = (1.0 - p).sqrt();
                let ke = (p / 3.0).sqrt();
                vec![
                    m(&[vec![o, z], vec![z, o]]).scale(C64::real(k0)),
                    m(&[vec![z, o], vec![o, z]]).scale(C64::real(ke)), // X
                    m(&[vec![z, -C64::I], vec![C64::I, z]]).scale(C64::real(ke)), // Y
                    m(&[vec![o, z], vec![z, -o]]).scale(C64::real(ke)), // Z
                ]
            }
            Channel::BitFlip(p) => {
                assert!((0.0..=1.0).contains(&p), "p out of range");
                vec![
                    m(&[vec![o, z], vec![z, o]]).scale(C64::real((1.0 - p).sqrt())),
                    m(&[vec![z, o], vec![o, z]]).scale(C64::real(p.sqrt())),
                ]
            }
            Channel::PhaseFlip(p) => {
                assert!((0.0..=1.0).contains(&p), "p out of range");
                vec![
                    m(&[vec![o, z], vec![z, o]]).scale(C64::real((1.0 - p).sqrt())),
                    m(&[vec![o, z], vec![z, -o]]).scale(C64::real(p.sqrt())),
                ]
            }
            Channel::AmplitudeDamping(g) => {
                assert!((0.0..=1.0).contains(&g), "gamma out of range");
                vec![
                    m(&[vec![o, z], vec![z, C64::real((1.0 - g).sqrt())]]),
                    m(&[vec![z, C64::real(g.sqrt())], vec![z, z]]),
                ]
            }
            Channel::PhaseDamping(l) => {
                assert!((0.0..=1.0).contains(&l), "lambda out of range");
                vec![
                    m(&[vec![o, z], vec![z, C64::real((1.0 - l).sqrt())]]),
                    m(&[vec![z, z], vec![z, C64::real(l.sqrt())]]),
                ]
            }
        }
    }
}

/// A circuit-level noise model.
#[derive(Clone, Debug, Default)]
pub struct NoiseModel {
    /// Channels applied to the target qubit after each single-qubit gate.
    pub after_1q: Vec<Channel>,
    /// Channels applied to every touched qubit after each multi-qubit
    /// instruction (controls included).
    pub after_multi: Vec<Channel>,
    /// Probability that a readout bit flips classically.
    pub readout_flip: f64,
}

impl NoiseModel {
    /// A noiseless model.
    pub fn ideal() -> Self {
        NoiseModel::default()
    }

    /// Uniform depolarizing noise: `p1` after single-qubit gates, `p2`
    /// after multi-qubit instructions.
    pub fn depolarizing(p1: f64, p2: f64) -> Self {
        NoiseModel {
            after_1q: vec![Channel::Depolarizing(p1)],
            after_multi: vec![Channel::Depolarizing(p2)],
            readout_flip: 0.0,
        }
    }

    /// True when the model adds no noise at all.
    pub fn is_ideal(&self) -> bool {
        self.after_1q.is_empty() && self.after_multi.is_empty() && self.readout_flip == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kraus_complete(channel: Channel) {
        let ks = channel.kraus();
        let mut sum = CMatrix::zeros(2, 2);
        for k in &ks {
            sum = &sum + &k.dagger().matmul(k);
        }
        assert!(
            sum.approx_eq(&CMatrix::identity(2), 1e-12),
            "{channel:?}: Kraus completeness violated"
        );
    }

    #[test]
    fn all_channels_are_trace_preserving() {
        for ch in [
            Channel::Depolarizing(0.13),
            Channel::BitFlip(0.4),
            Channel::PhaseFlip(0.9),
            Channel::AmplitudeDamping(0.35),
            Channel::PhaseDamping(0.5),
        ] {
            kraus_complete(ch);
        }
    }

    #[test]
    fn edge_probabilities_are_valid() {
        for ch in [
            Channel::Depolarizing(0.0),
            Channel::Depolarizing(1.0),
            Channel::BitFlip(0.0),
            Channel::BitFlip(1.0),
            Channel::AmplitudeDamping(1.0),
        ] {
            kraus_complete(ch);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_panics() {
        Channel::BitFlip(1.5).kraus();
    }

    #[test]
    fn ideal_model_is_ideal() {
        assert!(NoiseModel::ideal().is_ideal());
        assert!(!NoiseModel::depolarizing(0.01, 0.02).is_ideal());
    }
}
