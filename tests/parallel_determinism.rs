//! Determinism contract of the parallel execution layer: every parallel
//! API must produce bit-identical results regardless of the worker count.
//!
//! The contract holds because (a) random streams are forked from the
//! caller's generator serially, before any worker starts, and (b) each
//! work item writes only its own output slot, with any reduction done
//! serially in item order. These tests pin both halves by running every
//! parallel entry point across a thread ladder — the serial baseline plus
//! even and odd worker counts (odd counts leave a ragged trailing chunk,
//! which caught off-by-one geometry bugs the 1-vs-4 comparison missed) —
//! and demanding every rung match the baseline. The three cases the PR 9
//! pool rework leaned on hardest (intra-kernel amplitude splits, the
//! `map_rng` fork discipline, and the request service) run the full
//! 1/2/3/4 ladder.
//!
//! All tests share one process, and the thread-count override is global,
//! so each case serialises on a lock and restores the default when done.

use qmldb::anneal::{
    parallel_tempering, sharded_anneal, simulated_annealing, simulated_annealing_with_budget,
    simulated_quantum_annealing, Budget, Ising, SaParams, ShardedParams, SqaParams, TabuParams,
    TemperingParams,
};
use qmldb::db::instances::{InstanceGenerator, MqoParams};
use qmldb::db::portfolio::{Portfolio, Solver};
use qmldb::math::{par, Rng64};
use qmldb::qml::ansatz::{hardware_efficient, Entanglement};
use qmldb::qml::vqc::{GradMethod, VqcConfig};
use qmldb::qml::{FeatureMap, QuantumKernel, ShiftGradient, Vqc};
use qmldb::serve::{Reply, Request, Service, ServiceConfig, WorkloadSpec};
use qmldb::sim::{Circuit, PauliString, PauliSum, Simulator};
use std::collections::HashMap;
use std::sync::Mutex;

static THREAD_LOCK: Mutex<()> = Mutex::new(());

/// The standard ladder: serial baseline, an odd count (ragged trailing
/// chunk), and the even count the original pins used.
const LADDER: [usize; 3] = [1, 3, 4];

/// The full ladder for the cases the pool rework singles out.
const FULL_LADDER: [usize; 4] = [1, 2, 3, 4];

/// Runs `body` once per thread count in `counts` and returns the results
/// in the same order (index 0 is the serial baseline). Restores the
/// default thread count afterwards.
fn across_threads<R>(counts: &[usize], mut body: impl FnMut() -> R) -> Vec<R> {
    let _guard = THREAD_LOCK.lock().unwrap();
    let out = counts
        .iter()
        .map(|&n| {
            par::set_threads(n);
            body()
        })
        .collect();
    par::reset_threads();
    out
}

fn dataset(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Rng64::new(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.uniform_range(0.0, 2.0)).collect())
        .collect()
}

#[test]
fn gram_matrix_is_identical_across_thread_counts() {
    let xs = dataset(10, 3, 41);
    let qk = QuantumKernel::new(3, FeatureMap::ZZ { reps: 2 });
    let runs = across_threads(&LADDER, || qk.gram(&xs));
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        // Bit-identical, not approximately equal: the parallel layer may
        // not change even the floating-point summation order.
        assert_eq!(serial, parallel);
    }
}

#[test]
fn sampled_gram_matrix_is_identical_across_thread_counts() {
    // The `map_rng` fork-discipline case: one child stream per matrix
    // entry, forked serially pre-dispatch — run on the full 1/2/3/4
    // ladder.
    let xs = dataset(6, 2, 43);
    let qk = QuantumKernel::new(2, FeatureMap::Angle);
    let runs = across_threads(&FULL_LADDER, || {
        qk.gram_sampled(&xs, 256, &mut Rng64::new(7))
    });
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        assert_eq!(serial, parallel);
    }
}

#[test]
fn simulated_annealing_is_identical_across_thread_counts() {
    let mut rng = Rng64::new(45);
    let n = 12;
    let mut couplings = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.chance(0.5) {
                couplings.push((i, j, rng.uniform_range(-1.0, 1.0)));
            }
        }
    }
    let model = Ising::new(vec![0.0; n], couplings, 0.0);
    let params = SaParams {
        sweeps: 50,
        restarts: 4,
        ..SaParams::default()
    };
    let runs = across_threads(&LADDER, || {
        simulated_annealing(&model, &params, &mut Rng64::new(9))
    });
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        assert_eq!(serial.spins, parallel.spins);
        assert_eq!(serial.energy.to_bits(), parallel.energy.to_bits());
        assert_eq!(serial.trace, parallel.trace);
        assert_eq!(serial.proposals, parallel.proposals);
    }
}

#[test]
fn sharded_anneal_is_identical_across_thread_counts() {
    // A banded spin glass: locality gives the partitioner several shards
    // and the quotient graph more than one color class, so the test
    // exercises the full chromatic schedule, not a degenerate one-shard
    // run. Streams are forked per shard in shard order before each color
    // group dispatches; commits and the quench machinery are serial.
    let mut rng = Rng64::new(51);
    let n = 240;
    let h: Vec<f64> = (0..n).map(|_| rng.uniform_range(-0.5, 0.5)).collect();
    let mut couplings = Vec::new();
    for i in 0..n {
        for d in 1..=3usize {
            let j = i + d;
            if j < n && rng.chance(0.6) {
                couplings.push((i, j, rng.uniform_range(-1.0, 1.0)));
            }
        }
    }
    let model = Ising::new(h, couplings, 0.25);
    let params = ShardedParams {
        max_shard_vars: 32,
        rounds: 12,
        sweeps_per_round: 4,
        ..ShardedParams::default()
    };
    let runs = across_threads(&LADDER, || {
        sharded_anneal(&model, &params, &mut Rng64::new(13))
    });
    let (serial, rest) = runs.split_first().unwrap();
    assert!(serial.n_shards > 1, "partition degenerated to one shard");
    for parallel in rest {
        assert_eq!(serial.spins, parallel.spins);
        assert_eq!(serial.energy.to_bits(), parallel.energy.to_bits());
        assert_eq!(serial.cut_weight.to_bits(), parallel.cut_weight.to_bits());
        assert_eq!(
            serial.trace.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
            parallel
                .trace
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(serial.proposals, parallel.proposals);
    }
}

/// A random spin glass shared by the annealer determinism cases.
fn spin_glass(n: usize, seed: u64) -> Ising {
    let mut rng = Rng64::new(seed);
    let mut couplings = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.chance(0.5) {
                couplings.push((i, j, rng.uniform_range(-1.0, 1.0)));
            }
        }
    }
    Ising::new(vec![0.0; n], couplings, 0.0)
}

#[test]
fn simulated_quantum_annealing_is_identical_across_thread_counts() {
    // SQA parallelises over restarts; every restart's Trotter stack and
    // field caches must evolve identically whichever worker runs it.
    let model = spin_glass(10, 51);
    let params = SqaParams {
        replicas: 8,
        sweeps: 40,
        restarts: 4,
        ..SqaParams::default()
    };
    let runs = across_threads(&LADDER, || {
        simulated_quantum_annealing(&model, &params, &mut Rng64::new(19))
    });
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        assert_eq!(serial.spins, parallel.spins);
        assert_eq!(serial.energy.to_bits(), parallel.energy.to_bits());
        assert_eq!(serial.trace, parallel.trace);
        assert_eq!(serial.proposals, parallel.proposals);
    }
}

#[test]
fn parallel_tempering_is_identical_across_thread_counts() {
    // Tempering parallelises the per-sweep chain pass; chains mutate in
    // place (state + field cache + energy), and the swap round must see
    // the same chains in the same order for any worker count.
    let model = spin_glass(10, 53);
    let params = TemperingParams {
        chains: 6,
        sweeps: 40,
        ..TemperingParams::default()
    };
    let runs = across_threads(&LADDER, || {
        parallel_tempering(&model, &params, &mut Rng64::new(23))
    });
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        assert_eq!(serial.spins, parallel.spins);
        assert_eq!(serial.energy.to_bits(), parallel.energy.to_bits());
        assert_eq!(serial.trace, parallel.trace);
        assert_eq!(serial.proposals, parallel.proposals);
    }
}

#[test]
fn sample_counts_are_identical_across_thread_counts() {
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).ry(2, 0.7);
    let sim = Simulator::new();
    let runs: Vec<HashMap<usize, usize>> = across_threads(&LADDER, || {
        sim.sample_counts(&c, &[], 4096, &mut Rng64::new(11))
    });
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        assert_eq!(serial, parallel);
    }
}

#[test]
fn compiled_circuit_run_is_identical_across_thread_counts() {
    // 14 qubits = 2^14 amplitudes — exactly the compiled kernels' parallel
    // dispatch threshold, so the multi-worker runs actually exercise the
    // slab partitioning (smaller states would fall back to the serial path
    // and the comparison would be vacuous).
    let n = 14;
    let mut rng = Rng64::new(17);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        c.rzz(q, (q + 1) % n, rng.uniform_range(-1.0, 1.0));
    }
    for q in 0..n {
        c.rx(q, rng.uniform_range(-1.0, 1.0));
    }
    c.cx(0, n / 2).swap(1, n - 1).ccx(2, 3, 4);
    let compiled = c.compile();
    let sim = Simulator::new();
    let runs = across_threads(&LADDER, || sim.run_compiled(&compiled, &[]));
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        // Bit-identical: slab partitioning must not change one rounding.
        assert_eq!(serial, parallel);
    }
}

#[test]
fn intra_kernel_amplitude_split_is_identical_across_thread_counts() {
    // Gates on the *top* qubits are the ones whose aligned contiguous
    // slabs degenerate to a single span, so the multi-worker runs go
    // through the intra-kernel pair/quad splits (one gate's amplitude
    // range shared across workers) rather than whole-slab fan-out. Every
    // split path is pinned on the full 1/2/3/4 ladder: dense 1q on the
    // top bit, dense 2q with both targets high, mixed high/low 2q, SWAP
    // and controlled forms across the boundary.
    let n = 15;
    let mut rng = Rng64::new(83);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    c.ry(n - 1, rng.uniform_range(-3.0, 3.0));
    c.rx(n - 2, rng.uniform_range(-3.0, 3.0));
    c.rxx(n - 2, n - 1, rng.uniform_range(-3.0, 3.0));
    c.rxx(1, n - 1, rng.uniform_range(-3.0, 3.0));
    c.swap(0, n - 1).cx(2, n - 1).cswap(1, 3, n - 1);
    c.x(n - 1).rzz(0, n - 1, rng.uniform_range(-1.0, 1.0));
    let compiled = c.compile();
    let sim = Simulator::new();
    let runs = across_threads(&FULL_LADDER, || sim.run_compiled(&compiled, &[]));
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        assert_eq!(serial, parallel);
    }
}

#[test]
fn run_batch_is_identical_across_thread_counts() {
    let circuits: Vec<Circuit> = (0..6)
        .map(|i| {
            let mut c = Circuit::new(4);
            c.h(0).ry(1, 0.3 * i as f64).cx(0, 2).rzz(2, 3, 0.7);
            c
        })
        .collect();
    let sim = Simulator::new();
    let runs = across_threads(&LADDER, || sim.run_batch(&circuits, &[]));
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        assert_eq!(serial, parallel);
    }
}

#[test]
fn run_batch_params_is_identical_across_thread_counts() {
    let mut c = Circuit::new(5);
    let p = c.new_param();
    c.h(0).ry(2, p).cx(0, 3).rzz(3, 4, p).rx(4, 0.4);
    let compiled = c.compile();
    let param_sets: Vec<Vec<f64>> = (0..10).map(|k| vec![0.31 * k as f64 - 1.4]).collect();
    let sim = Simulator::new();
    let runs = across_threads(&LADDER, || sim.run_batch_params(&compiled, &param_sets));
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        assert_eq!(serial, parallel);
    }
}

#[test]
fn vqc_training_is_identical_across_thread_counts() {
    // Vqc::train fans per-sample (output, gradient) evaluation out over
    // the parallel layer and reduces serially in sample order: trained
    // parameters and the loss history must be bit-identical whichever
    // worker count ran the batch.
    let mut data_rng = Rng64::new(57);
    let xs = dataset(8, 2, 59);
    let ys: Vec<f64> = (0..8)
        .map(|_| if data_rng.chance(0.5) { 1.0 } else { -1.0 })
        .collect();
    let cfg = VqcConfig {
        epochs: 4,
        grad: GradMethod::ParameterShift,
        ..VqcConfig::default()
    };
    let runs = across_threads(&LADDER, || {
        Vqc::train(cfg.clone(), &xs, &ys, &mut Rng64::new(61))
    });
    let (serial, rest) = runs.split_first().unwrap();
    let bits = |m: &Vqc| -> Vec<u64> { m.loss_history.iter().map(|v| v.to_bits()).collect() };
    for parallel in rest {
        assert_eq!(serial.params(), parallel.params());
        assert_eq!(bits(serial), bits(parallel));
    }
}

#[test]
fn parameter_shift_gradient_is_identical_across_thread_counts() {
    // The shift rule's 2k evaluations fan out over par::map with a serial
    // chain-rule reduction — the noisy-simulator fallback path of the
    // gradient engine, exercised here directly on the ideal simulator.
    let c = hardware_efficient(3, 2, Entanglement::Linear);
    let sg = ShiftGradient::new(&c);
    let obs = PauliSum::from_terms(vec![
        (1.0, PauliString::z(0)),
        (0.5, PauliString::zz(1, 2)),
        (-0.3, PauliString::x(1)),
    ]);
    let params: Vec<f64> = (0..c.n_params()).map(|i| 0.21 * i as f64 - 1.1).collect();
    let sim = Simulator::new();
    let runs = across_threads(&LADDER, || sg.gradient(&sim, &params, &obs));
    let bits = |g: &[f64]| -> Vec<u64> { g.iter().map(|v| v.to_bits()).collect() };
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        assert_eq!(bits(serial), bits(parallel));
    }
}

#[test]
fn solver_portfolio_is_identical_across_thread_counts() {
    // Portfolio::solve forks one RNG stream per member serially, then fans
    // the runs out over the parallel layer: the winning solution, every
    // per-solver run, and the caller's stream must be bit-identical for
    // any worker count.
    let mut inst_rng = Rng64::new(67);
    let m = MqoParams {
        n_queries: 5,
        plans_per: 3,
        sharing_density: 0.6,
    }
    .generate(&mut inst_rng);
    let portfolio = Portfolio::new(vec![
        Solver::Sa(SaParams {
            sweeps: 300,
            restarts: 2,
            ..SaParams::default()
        }),
        Solver::Sqa(SqaParams {
            sweeps: 100,
            restarts: 1,
            ..SqaParams::default()
        }),
        Solver::Tabu(TabuParams {
            iters: 300,
            ..TabuParams::default()
        }),
        Solver::ExactSpectrum,
    ]);
    let runs = across_threads(&LADDER, || {
        let mut rng = Rng64::new(71);
        let out = portfolio.solve(&m, &mut rng);
        (out, rng.next_u64())
    });
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        assert_eq!(serial.0.solution, parallel.0.solution);
        assert_eq!(serial.0.objective.to_bits(), parallel.0.objective.to_bits());
        assert_eq!(serial.0.solver, parallel.0.solver);
        assert_eq!(serial.0.runs.len(), parallel.0.runs.len());
        for (a, b) in serial.0.runs.iter().zip(&parallel.0.runs) {
            assert_eq!(a.solver, b.solver);
            assert_eq!(a.solution, b.solution);
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
            assert_eq!(a.penalty_doublings, b.penalty_doublings);
            assert_eq!(a.repaired, b.repaired);
        }
        assert_eq!(
            serial.1, parallel.1,
            "caller stream must advance identically"
        );
    }
}

#[test]
fn budget_exhausted_runs_are_identical_across_thread_counts() {
    // PR 10's determinism claim: an exact proposal budget is split
    // across parallel units serially before dispatch, so a run the
    // budget cuts short returns the same best-so-far state — and the
    // same consumed-proposal count — for any worker count.
    let model = spin_glass(12, 61);
    let sa_params = SaParams {
        sweeps: 60,
        restarts: 4,
        ..SaParams::default()
    };
    // 12 proposals/sweep × 60 sweeps × 4 restarts = 2880 scheduled;
    // 700 cuts every restart mid-anneal.
    let budget = Budget::proposals(700);
    let runs = across_threads(&LADDER, || {
        let out = simulated_annealing_with_budget(&model, &sa_params, &budget, &mut Rng64::new(17));
        (
            out.spins,
            out.energy.to_bits(),
            out.proposals,
            out.exhausted,
        )
    });
    let (serial, rest) = runs.split_first().unwrap();
    assert!(serial.3, "the budget must actually bite");
    assert_eq!(serial.2, 700, "exact budgets are consumed exactly");
    for parallel in rest {
        assert_eq!(serial, parallel, "budget-cut SA diverged");
    }

    // Through the portfolio the same bound splits over members, then
    // over each member's restarts — still entirely pre-dispatch.
    let mut inst_rng = Rng64::new(97);
    let m = MqoParams {
        n_queries: 5,
        plans_per: 3,
        sharing_density: 0.6,
    }
    .generate(&mut inst_rng);
    let portfolio = Portfolio::new(vec![
        Solver::Sa(SaParams {
            sweeps: 300,
            restarts: 2,
            ..SaParams::default()
        }),
        Solver::Tabu(TabuParams {
            iters: 300,
            ..TabuParams::default()
        }),
    ]);
    let budget = Budget::proposals(900);
    let runs = across_threads(&LADDER, || {
        let mut rng = Rng64::new(101);
        let out = portfolio.solve_with_budget(&m, &budget, &mut rng);
        (out, rng.next_u64())
    });
    let (serial, rest) = runs.split_first().unwrap();
    assert!(serial.0.budget_exhausted, "the budget must actually bite");
    for parallel in rest {
        assert_eq!(serial.0.solution, parallel.0.solution);
        assert_eq!(serial.0.objective.to_bits(), parallel.0.objective.to_bits());
        assert_eq!(serial.0.budget_exhausted, parallel.0.budget_exhausted);
        for (a, b) in serial.0.runs.iter().zip(&parallel.0.runs) {
            assert_eq!(a.solution, b.solution);
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
            assert_eq!(a.proposals, b.proposals, "{}: consumed count", a.solver);
            assert_eq!(a.budget_exhausted, b.budget_exhausted);
        }
        assert_eq!(serial.1, parallel.1, "caller stream diverged");
    }
}

#[test]
fn reentrant_nested_fanout_is_identical_across_thread_counts() {
    // Reentrant pool use in its pure form: an outer par::map over problem
    // instances whose body fans annealer restarts out *again* from inside
    // a pooled worker (the Portfolio → annealer shape, without the
    // portfolio machinery in the way). The inner fan-out must complete
    // without deadlock — the caller executes its own batch's chunks — and
    // the nesting must not perturb a single fork or rounding on the full
    // 1/2/3/4 ladder.
    let models: Vec<Ising> = (0..3).map(|k| spin_glass(10, 100 + k)).collect();
    let params = SaParams {
        sweeps: 30,
        restarts: 3,
        ..SaParams::default()
    };
    let runs = across_threads(&FULL_LADDER, || {
        par::map(&models, |i, m| {
            let mut rng = Rng64::new(200 + i as u64);
            let out = simulated_annealing(m, &params, &mut rng);
            (out.spins, out.energy.to_bits(), rng.next_u64())
        })
    });
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        assert_eq!(serial, parallel, "nested fan-out diverged");
    }
}

#[test]
fn set_threads_resize_mid_sequence_matches_serial() {
    // The pool must honor every set_threads change between fan-outs —
    // growing, shrinking below the spawned width (masking surplus
    // workers), and growing again — with each call's result identical to
    // the serial baseline.
    let _guard = THREAD_LOCK.lock().unwrap();
    let model = spin_glass(10, 303);
    let params = SaParams {
        sweeps: 30,
        restarts: 4,
        ..SaParams::default()
    };
    par::set_threads(1);
    let baseline = simulated_annealing(&model, &params, &mut Rng64::new(29));
    for threads in [4usize, 2, 5, 3] {
        par::set_threads(threads);
        let out = simulated_annealing(&model, &params, &mut Rng64::new(29));
        assert_eq!(baseline.spins, out.spins, "diverged at {threads} threads");
        assert_eq!(baseline.energy.to_bits(), out.energy.to_bits());
        assert_eq!(baseline.trace, out.trace);
    }
    par::reset_threads();
}

#[test]
fn optimizer_service_is_identical_across_thread_counts() {
    // The serve layer batches requests over par::map twice (prepare and
    // solve) with per-request RNG streams derived from request content.
    // Every admitted answer — and the cached re-answer — must be
    // bit-identical whichever worker count ran the batch; the service
    // case runs the full 1/2/3/4 ladder.
    let batch = vec![
        Request {
            workload: WorkloadSpec::JoinOrder {
                cardinalities: vec![100.0, 2000.0, 50.0, 700.0],
                edges: vec![(0, 1, 0.01), (1, 2, 0.05), (2, 3, 0.1)],
            },
            seed: 3,
            deadline_ms: None,
        },
        Request {
            workload: WorkloadSpec::Mqo {
                plan_costs: vec![vec![10.0, 14.0], vec![9.0, 11.0], vec![20.0, 16.0]],
                savings: vec![((0, 0), (1, 1), 4.0), ((1, 0), (2, 1), 3.0)],
            },
            seed: 5,
            deadline_ms: None,
        },
        Request {
            workload: WorkloadSpec::IndexSelection {
                sizes: vec![30.0, 45.0, 25.0, 60.0],
                benefits: vec![80.0, 55.0, 40.0, 95.0],
                interactions: vec![(0, 3, 12.0)],
                budget: 90.0,
            },
            seed: 7,
            deadline_ms: None,
        },
        Request {
            workload: WorkloadSpec::TxSchedule {
                n_tx: 5,
                n_slots: 3,
                conflicts: vec![(0, 1, 2.0), (1, 2, 1.5), (3, 4, 1.0)],
                balance_weight: 0.2,
            },
            seed: 11,
            deadline_ms: None,
        },
    ];
    let portfolio = Portfolio::new(vec![
        Solver::Sa(SaParams {
            sweeps: 200,
            restarts: 2,
            ..SaParams::default()
        }),
        Solver::Tabu(TabuParams {
            iters: 200,
            ..TabuParams::default()
        }),
    ]);
    let runs = across_threads(&FULL_LADDER, || {
        let mut service = Service::new(ServiceConfig {
            portfolio: portfolio.clone(),
            cache_capacity: 16,
            max_pending: 8,
        });
        let cold = service.submit_batch(&batch);
        let warm = service.submit_batch(&batch);
        (cold, warm, service.stats())
    });
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        for (pass_serial, pass_parallel) in [(&serial.0, &parallel.0), (&serial.1, &parallel.1)] {
            assert_eq!(pass_serial.len(), pass_parallel.len());
            for (a, b) in pass_serial.iter().zip(pass_parallel.iter()) {
                let (a, b) = match (a, b) {
                    (Reply::Done(a), Reply::Done(b)) => (a, b),
                    other => panic!("expected Done replies, got {other:?}"),
                };
                assert_eq!(a.solution, b.solution);
                assert_eq!(a.objective.to_bits(), b.objective.to_bits());
                assert_eq!(a.solver, b.solver);
                assert_eq!(a.signature, b.signature);
                assert_eq!(a.cached, b.cached);
            }
        }
        assert_eq!(serial.2, parallel.2, "service counters must match");
    }
    // The warm pass is the cold pass replayed from the cache, bit for bit.
    for (cold, warm) in serial.0.iter().zip(&serial.1) {
        let (cold, warm) = match (cold, warm) {
            (Reply::Done(c), Reply::Done(w)) => (c, w),
            other => panic!("expected Done replies, got {other:?}"),
        };
        assert!(!cold.cached && warm.cached);
        assert_eq!(cold.solution, warm.solution);
        assert_eq!(cold.objective.to_bits(), warm.objective.to_bits());
    }
    assert_eq!(serial.2.hits, batch.len() as u64);
}

#[test]
fn caller_rng_stream_advances_identically_for_any_thread_count() {
    // The caller's generator must be in the same state after a parallel
    // call no matter how many workers ran, or everything downstream of
    // the call would diverge between machines.
    let xs = dataset(5, 2, 47);
    let qk = QuantumKernel::new(2, FeatureMap::Angle);
    let runs = across_threads(&LADDER, || {
        let mut rng = Rng64::new(13);
        qk.gram_sampled(&xs, 64, &mut rng);
        rng.next_u64()
    });
    let (serial, rest) = runs.split_first().unwrap();
    for parallel in rest {
        assert_eq!(serial, parallel);
    }
}
