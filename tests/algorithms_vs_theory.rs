//! Cross-crate integration: algorithm outputs against closed-form theory.

use qmldb::math::{Matrix, Rng64};
use qmldb::qml::amplitude::{estimate_amplitude, exact_count};
use qmldb::qml::grover::{grover_search, optimal_iterations};
use qmldb::qml::linear::{classical_solution, hhl_solve, solution_fidelity, HhlConfig};
use qmldb::qml::qft::qft;
use qmldb::sim::{Simulator, StateVector};

#[test]
fn grover_success_matches_sin_formula() {
    // After k iterations: P(success) = sin²((2k+1)θ), sinθ = √(M/N).
    let n = 7usize;
    let marked = 3usize;
    let oracle = |x: usize| x < marked;
    let theta = ((marked as f64 / (1 << n) as f64).sqrt()).asin();
    let mut rng = Rng64::new(3301);
    for k in [0usize, 1, 2, 4, 8] {
        let r = grover_search(n, &oracle, k, &mut rng);
        let predicted = ((2 * k + 1) as f64 * theta).sin().powi(2);
        assert!(
            (r.success_probability - predicted).abs() < 1e-9,
            "k={k}: {} vs {predicted}",
            r.success_probability
        );
    }
    let _ = optimal_iterations(1 << n, marked);
}

#[test]
fn amplitude_estimation_error_beats_direct_sampling_at_equal_oracle_budget() {
    let n = 8usize;
    let oracle = |x: usize| x % 16 == 1; // a = 1/16
    let truth = exact_count(n, &oracle) as f64 / (1 << n) as f64;
    let mut ae_err = 0.0;
    let mut mc_err = 0.0;
    let reps = 6;
    for s in 0..reps {
        let mut rng = Rng64::new(3303 + s);
        let ae = estimate_amplitude(n, &oracle, 6, 64, &mut rng);
        ae_err += (ae.amplitude - truth).abs() / reps as f64;
        // Monte-Carlo with the same number of oracle evaluations.
        let budget = ae.oracle_calls.max(ae.shots);
        let hits = (0..budget).filter(|_| oracle(rng.index(1 << n))).count();
        mc_err += (hits as f64 / budget as f64 - truth).abs() / reps as f64;
    }
    assert!(
        ae_err < mc_err,
        "AE mean error {ae_err} vs MC mean error {mc_err}"
    );
}

#[test]
fn qft_output_matches_classical_dft_of_input_amplitudes() {
    // QFT on a superposition = DFT of the amplitude vector.
    let k = 4usize;
    let dim = 1usize << k;
    let mut rng = Rng64::new(3305);
    let amps: Vec<qmldb::math::C64> = (0..dim)
        .map(|_| qmldb::math::C64::new(rng.normal(), rng.normal()))
        .collect();
    let mut s = StateVector::from_amplitudes(amps.clone());
    let input = s.amplitudes().to_vec();
    s.run(&qft(k), &[]);
    for out_idx in 0..dim {
        let mut expect = qmldb::math::C64::ZERO;
        for (j, a) in input.iter().enumerate() {
            expect += *a
                * qmldb::math::C64::cis(std::f64::consts::TAU * (j * out_idx) as f64 / dim as f64);
        }
        expect = expect / (dim as f64).sqrt();
        assert!(
            s.amplitudes()[out_idx].approx_eq(expect, 1e-9),
            "bin {out_idx}"
        );
    }
}

#[test]
fn hhl_agrees_with_lu_solver_direction() {
    let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
    let b = [1.0, -2.0];
    let quantum = hhl_solve(
        &a,
        &b,
        &HhlConfig {
            clock_bits: 7,
            c_scale: 0.6,
        },
    )
    .unwrap();
    let classical = classical_solution(&a, &b).unwrap();
    let f = solution_fidelity(&quantum.solution, &classical);
    assert!(f > 0.999, "fidelity {f}");
}

#[test]
fn noisy_simulation_interpolates_to_maximally_mixed() {
    use qmldb::sim::{Circuit, NoiseModel};
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    for _ in 0..6 {
        c.x(0).x(0); // pad circuit volume to accumulate noise
    }
    let heavy = Simulator::with_noise(NoiseModel::depolarizing(0.3, 0.3));
    let rho = heavy.run_density(&c, &[]);
    // Strong depolarization drives purity toward 1/4 (2 qubits).
    assert!(rho.purity() < 0.4, "purity {}", rho.purity());
    assert!((rho.trace() - 1.0).abs() < 1e-9);
}
