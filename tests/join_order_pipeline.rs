//! Cross-crate integration: the full join-ordering pipeline — query
//! generation → QUBO encoding → annealing → decoding → true-cost scoring —
//! against the exact DP optimizer, including robustness to cardinality
//! estimation error and the hardware-embedding step.

use qmldb::anneal::embed::{clique_embedding, complete_graph_edges, Chimera};
use qmldb::anneal::{simulated_annealing, spins_to_bits, SaParams};
use qmldb::db::joinorder::{goo, optimize_bushy, optimize_left_deep, CostModel};
use qmldb::db::problem::QuboProblem;
use qmldb::db::qubo_jo::JoinOrderQubo;
use qmldb::db::query::{generate, tpch_like_query, Topology};
use qmldb::math::Rng64;

fn anneal_order(g: &qmldb::db::query::JoinGraph, rng: &mut Rng64) -> (Vec<usize>, f64) {
    let jo = JoinOrderQubo::new(g);
    let r = simulated_annealing(
        &jo.encode(jo.auto_penalty()).to_ising(),
        &SaParams {
            sweeps: 2500,
            restarts: 5,
            ..SaParams::default()
        },
        rng,
    );
    let order = jo.decode(&spins_to_bits(&r.spins));
    let cost = jo.true_cost(&order, CostModel::Cout);
    (order, cost)
}

#[test]
fn annealed_orders_are_valid_permutations_and_near_optimal() {
    let mut rng = Rng64::new(3201);
    for topo in [Topology::Chain, Topology::Star, Topology::Cycle] {
        let g = generate(topo, 7, &mut rng);
        let exact = optimize_left_deep(&g, CostModel::Cout);
        let (order, annealed_cost) = anneal_order(&g, &mut rng);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..7).collect::<Vec<_>>(),
            "{topo:?}: not a permutation"
        );
        assert!(
            annealed_cost >= exact.cost * (1.0 - 1e-9),
            "{topo:?}: annealed below the exact floor"
        );
        assert!(
            annealed_cost <= 100.0 * exact.cost,
            "{topo:?}: annealed {annealed_cost} vs exact {}",
            exact.cost
        );
    }
}

#[test]
fn tpch_like_query_optimizes_through_all_paths() {
    let g = tpch_like_query(0.01);
    let ld = optimize_left_deep(&g, CostModel::Cout);
    let bushy = optimize_bushy(&g, CostModel::Cout);
    let (_, goo_cost) = goo(&g, CostModel::Cout);
    assert!(bushy.cost <= ld.cost * (1.0 + 1e-9));
    assert!(goo_cost >= bushy.cost * (1.0 - 1e-9));
    let mut rng = Rng64::new(3203);
    let (_, annealed) = anneal_order(&g, &mut rng);
    assert!(annealed >= ld.cost * (1.0 - 1e-9));
    assert!(annealed.is_finite());
}

#[test]
fn optimizer_is_resilient_to_moderate_cardinality_error() {
    // Optimize under noisy estimates, score under the truth: the plan
    // found should stay within a bounded factor of the true optimum.
    let mut rng = Rng64::new(3205);
    let g = generate(Topology::Chain, 8, &mut rng);
    let truth_cost = optimize_left_deep(&g, CostModel::Cout).cost;
    let noisy = g.with_cardinality_noise(0.5, &mut rng);
    let plan_under_noise = optimize_left_deep(&noisy, CostModel::Cout);
    // Score the noisy-optimal order on the true graph.
    let order = extract_left_deep_order(&plan_under_noise.plan);
    let scored = qmldb::db::joinorder::left_deep_cost(&order, &g, CostModel::Cout);
    assert!(
        scored <= 1000.0 * truth_cost,
        "noise-planned {scored} vs true optimum {truth_cost}"
    );
}

fn extract_left_deep_order(tree: &qmldb::db::JoinTree) -> Vec<usize> {
    match tree {
        qmldb::db::JoinTree::Leaf(r) => vec![*r],
        qmldb::db::JoinTree::Join(l, r) => {
            let mut order = extract_left_deep_order(l);
            order.extend(extract_left_deep_order(r));
            order
        }
    }
}

#[test]
fn join_order_qubo_deploys_onto_chimera() {
    // The one-hot structure of an n-relation JO-QUBO couples nearly all
    // variable pairs; the native clique embedding must absorb it.
    let mut rng = Rng64::new(3207);
    let g = generate(Topology::Clique, 4, &mut rng);
    let jo = JoinOrderQubo::new(&g);
    let logical = jo.n_vars();
    let fabric = Chimera::new(logical.div_ceil(4));
    let e = clique_embedding(logical, &fabric).expect("fabric sized to fit");
    e.validate(&fabric, &complete_graph_edges(logical)).unwrap();
    assert!(e.physical_qubits() >= logical, "chains cost extra qubits");
}
