//! Cross-crate integration: gate-model QAOA, annealers, and exact solvers
//! must agree on the same QUBO instances.

use qmldb::anneal::{
    simulated_annealing, simulated_quantum_annealing, solve_exact, tabu_search, Qubo, SaParams,
    SqaParams, TabuParams,
};
use qmldb::math::Rng64;
use qmldb::qml::qaoa::Qaoa;

/// A random QUBO small enough for every solver in the house.
fn random_qubo(n: usize, seed: u64) -> Qubo {
    let mut rng = Rng64::new(seed);
    let mut q = Qubo::new(n);
    for i in 0..n {
        q.add_linear(i, rng.uniform_range(-1.0, 1.0));
        for j in (i + 1)..n {
            if rng.chance(0.6) {
                q.add(i, j, rng.uniform_range(-1.0, 1.0));
            }
        }
    }
    q
}

#[test]
fn all_annealers_find_the_exact_ground_state() {
    let q = random_qubo(10, 3101);
    let exact = solve_exact(&q);
    let ising = q.to_ising();
    let mut rng = Rng64::new(3102);

    let sa = simulated_annealing(&ising, &SaParams::default(), &mut rng);
    assert!((sa.energy - exact.energy).abs() < 1e-9, "SA {}", sa.energy);

    let sqa = simulated_quantum_annealing(&ising, &SqaParams::default(), &mut rng);
    assert!(
        (sqa.energy - exact.energy).abs() < 1e-9,
        "SQA {}",
        sqa.energy
    );

    let tabu = tabu_search(&q, &TabuParams::default(), &mut rng);
    assert!(
        (tabu.energy - exact.energy).abs() < 1e-9,
        "tabu {}",
        tabu.energy
    );
}

#[test]
fn qaoa_samples_reach_the_exact_ground_state_on_small_qubos() {
    let q = random_qubo(6, 3103);
    let exact = solve_exact(&q);
    let ising = q.to_ising();
    let qaoa = Qaoa::from_ising(6, ising.fields(), ising.couplings(), ising.offset(), 3);
    let mut rng = Rng64::new(3104);
    let r = qaoa.solve(60, 2, 1024, &mut rng);
    // QUBO energies and diagonal Hamiltonian energies agree by
    // construction; sampling the optimized state should reach the ground
    // state on 6 variables.
    assert!(
        (r.best_energy - exact.energy).abs() < 1e-9,
        "QAOA best {} vs exact {}",
        r.best_energy,
        exact.energy
    );
}

#[test]
fn qubo_ising_pauli_energies_are_consistent() {
    // The same assignment must get the same energy through all three
    // representations: QUBO bits, Ising spins, and the diagonal PauliSum
    // inside QAOA.
    let q = random_qubo(5, 3105);
    let ising = q.to_ising();
    let qaoa = Qaoa::from_ising(5, ising.fields(), ising.couplings(), ising.offset(), 1);
    for idx in 0..32usize {
        let bits: Vec<bool> = (0..5).map(|i| idx & (1 << i) != 0).collect();
        let spins: Vec<i8> = bits.iter().map(|&b| if b { 1 } else { -1 }).collect();
        let e_qubo = q.energy(&bits);
        let e_ising = ising.energy(&spins);
        let e_pauli = qaoa.cost().diagonal_energy(idx);
        assert!((e_qubo - e_ising).abs() < 1e-9, "idx {idx}");
        assert!((e_qubo - e_pauli).abs() < 1e-9, "idx {idx}");
    }
}
