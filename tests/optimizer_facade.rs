//! Cross-crate integration: the one-call optimizer facade against every
//! strategy, including the simulated annealer device.

use qmldb::anneal::device::DeviceConfig;
use qmldb::anneal::{SaParams, SqaParams};
use qmldb::db::joinorder::CostModel;
use qmldb::db::optimizer::{optimize, Strategy};
use qmldb::db::query::{generate, Topology};
use qmldb::math::Rng64;

#[test]
fn facade_strategies_rank_sanely_on_a_chain_query() {
    let mut rng = Rng64::new(4001);
    let g = generate(Topology::Chain, 6, &mut rng);
    let exact = optimize(&g, CostModel::Cout, &Strategy::ExactDpLeftDeep, &mut rng)
        .unwrap()
        .cost;
    let ikkbz = optimize(&g, CostModel::Cout, &Strategy::Ikkbz, &mut rng)
        .unwrap()
        .cost;
    // IKKBZ is optimal within connected-prefix left-deep plans; on chains
    // with well-behaved selectivities it matches the unrestricted
    // left-deep DP (cross products never pay here).
    assert!(ikkbz >= exact * (1.0 - 1e-9));
    assert!(ikkbz <= 10.0 * exact, "ikkbz {ikkbz} vs exact {exact}");

    let annealed = optimize(
        &g,
        CostModel::Cout,
        &Strategy::AnnealedQubo {
            params: SaParams {
                sweeps: 2000,
                restarts: 4,
                ..SaParams::default()
            },
        },
        &mut rng,
    )
    .unwrap()
    .cost;
    assert!(annealed >= exact * (1.0 - 1e-9));

    let sqa = optimize(
        &g,
        CostModel::Cout,
        &Strategy::QuantumAnnealedQubo {
            params: SqaParams {
                sweeps: 800,
                replicas: 12,
                restarts: 2,
                temperature_factor: 0.01,
                ..SqaParams::default()
            },
        },
        &mut rng,
    )
    .unwrap()
    .cost;
    assert!(sqa >= exact * (1.0 - 1e-9));
}

#[test]
fn device_strategy_closes_the_loop_from_query_to_hardware() {
    let mut rng = Rng64::new(4003);
    let g = generate(Topology::Star, 4, &mut rng); // 16 QUBO variables
    let exact = optimize(&g, CostModel::Cout, &Strategy::ExactDpLeftDeep, &mut rng)
        .unwrap()
        .cost;
    let device = optimize(
        &g,
        CostModel::Cout,
        &Strategy::Device {
            config: DeviceConfig {
                fabric_m: 4,
                chain_strength_factor: 2.0,
                reads: 6,
                ..DeviceConfig::default()
            },
        },
        &mut rng,
    )
    .unwrap();
    assert_eq!(device.plan.relation_mask(), (1 << 4) - 1);
    assert!(device.cost >= exact * (1.0 - 1e-9));
    assert!(
        device.cost <= 100.0 * exact,
        "device plan {} vs exact {exact}",
        device.cost
    );
}

#[test]
fn strategies_expose_stable_names() {
    let mut rng = Rng64::new(4005);
    let g = generate(Topology::Chain, 4, &mut rng);
    for (s, name) in [
        (Strategy::ExactDpBushy, "dp-bushy"),
        (Strategy::Goo, "goo"),
        (Strategy::Random { k: 5 }, "random"),
    ] {
        let r = optimize(&g, CostModel::Cout, &s, &mut rng).unwrap();
        assert_eq!(r.strategy_name, name);
    }
}
