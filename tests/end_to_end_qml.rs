//! Cross-crate integration: the QML stack end to end through the `qmldb`
//! facade.

use qmldb::math::Rng64;
use qmldb::ml::{dataset, Kernel, LogReg, LogRegParams, Svm, SvmParams};
use qmldb::qml::kernel::{FeatureMap, QuantumKernel};
use qmldb::qml::qsvm::{KernelMode, Qsvm};
use qmldb::qml::vqc::{GradMethod, Vqc, VqcConfig};

#[test]
fn qsvm_pipeline_beats_chance_and_matches_classical_on_moons() {
    let mut rng = Rng64::new(3001);
    let d = dataset::two_moons(80, 0.12, &mut rng).rescaled(0.0, std::f64::consts::PI);
    let (train, test) = d.split(0.6, &mut rng);
    let params = SvmParams {
        c: 5.0,
        ..SvmParams::default()
    };

    let q = Qsvm::train(
        QuantumKernel::new(6, FeatureMap::MultiScale { copies: 3 }),
        train.x.clone(),
        train.y.clone(),
        KernelMode::Exact,
        &params,
        &mut rng,
    );
    let rbf = Svm::train(
        train.x.clone(),
        train.y.clone(),
        Kernel::Rbf { gamma: 2.0 },
        &params,
        &mut rng,
    );
    let qa = q.accuracy(&test.x, &test.y);
    let ca = rbf.accuracy(&test.x, &test.y);
    assert!(qa >= 0.85, "quantum kernel test accuracy {qa}");
    assert!(
        qa >= ca - 0.15,
        "quantum {qa} should be near classical {ca}"
    );
}

#[test]
fn vqc_solves_xor_where_linear_model_fails() {
    let mut rng = Rng64::new(3003);
    let d = dataset::xor(48, 0.2, &mut rng).rescaled(0.0, std::f64::consts::PI);
    let vqc = Vqc::train(
        VqcConfig {
            n_qubits: 2,
            layers: 3,
            feature_map: FeatureMap::Angle,
            epochs: 60,
            lr: 0.15,
            grad: GradMethod::ParameterShift,
            reupload: false,
        },
        &d.x,
        &d.y,
        &mut rng,
    );
    let logreg = LogReg::train(&d.x, &d.y, &LogRegParams::default());
    let vqc_acc = vqc.accuracy(&d.x, &d.y);
    let lin_acc = logreg.accuracy(&d.x, &d.y);
    assert!(vqc_acc >= 0.8, "VQC accuracy {vqc_acc}");
    assert!(lin_acc <= 0.75, "logreg should fail XOR, got {lin_acc}");
}

#[test]
fn sampled_kernel_gram_is_close_to_exact() {
    let mut rng = Rng64::new(3005);
    let d = dataset::circles(16, 0.05, &mut rng).rescaled(0.0, std::f64::consts::PI);
    let k = QuantumKernel::new(2, FeatureMap::ZZ { reps: 1 });
    let exact = k.gram(&d.x);
    let sampled = k.gram_sampled(&d.x, 4096, &mut rng);
    let mut max_err = 0.0f64;
    for i in 0..exact.len() {
        for j in 0..exact.len() {
            max_err = max_err.max((exact[i][j] - sampled[i][j]).abs());
        }
    }
    assert!(max_err < 0.05, "max Gram deviation {max_err}");
}
